"""Interprocedural determinism taint + complexity-budget pass (DT201-DT204).

WOHA's §IV claims are *per-heartbeat* properties of whole call chains: the
Double Skip List only buys O(1) head deletion / O(log n_w) updates if no
helper on the path re-introduces an O(n_w) scan, and a scheduling decision
is only reproducible if nothing it transitively calls reads the clock or
iterates a set.  The intraprocedural rules (DT101-DT107) see one file at a
time; this pass walks the :mod:`repro.analysis.callgraph` graph.

**Taint (DT201).**  Seeds are the intraprocedural nondeterminism rules
re-run unconditionally (DT101/DT102/DT107 hits in *any* module) plus
environment sources those rules don't cover: ``os.environ`` reads and
filesystem-listing calls (``os.listdir``/``scandir``/``walk``,
``glob.glob``/``iglob``, ``Path.iterdir``/``glob``/``rglob`` — directory
order is filesystem-dependent).  Taint propagates caller-ward along every
edge, including ambiguous ones — for soundness the taint lattice takes the
union over possible callees.  A violation is emitted at each *boundary
edge*: a decision-path caller invoking a tainted non-decision-path callee.
Seeds already inside decision-path modules are the intra rules' business —
reporting them again here would double every DT101.  The message carries
the full sink→source chain.

**Dynamic calls (DT202).**  A call the builder could not resolve (a
parameter invoked, ``getattr(...)(...)``, an instance-attribute callable)
inside a decision-path function is a hole in the taint analysis; either
resolve it or declare the possible targets with ``# repro: calls[...]``
(which only silences the rule if at least one target resolves).

**Budgets (DT203/DT204).**  A declared ``# repro: budget O(...)`` bounds
everything reachable through *precise* edges: O(n) scan sites (``for``
loops and order-sensitive comprehensions over unbounded collections,
single-argument ``sorted``/``min``/``max``/``sum``/``list``/``tuple`` over
non-literal iterables) and calls into functions whose own declared budget
exceeds the caller's.  ``while`` loops are exempt — the §IV-B head-advance
loop is amortised O(1) per element and a syntactic pass cannot see
amortisation.  Ambiguous CHA edges are excluded from budget arithmetic
(the Double Skip List is backend-generic *by design*; bench_fig13a
measures the actual per-backend cost) — that trade-off is documented in
DESIGN.md §9.  Violations are emitted at the terminal witness (the
offending loop line or the over-budget call line) with the chain from the
budgeted root, so one ``# repro: allow[DT203]`` at the loop covers every
chain through it.  DT204 keeps the system honest the other way around:
hot-path functions (the built-in registry below, ``# repro: hot-path``
markers, ``@hot_path``) must declare a budget at all.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    BUDGET_GRAMMAR,
    CallEdge,
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    build_call_graph,
)
from repro.analysis.engine import inline_allows
from repro.analysis.rules import Violation, scan_module

__all__ = [
    "HOT_PATH_REGISTRY",
    "INTERPROC_RULES",
    "TaintSeed",
    "analyze_graph",
    "apply_hot_registry",
    "seed_allow_uses",
]

#: The rule ids this pass owns (registered in ``rules.RULES``).
INTERPROC_RULES: Tuple[str, ...] = ("DT201", "DT202", "DT203", "DT204")

#: Functions that are hot by construction: the §IV data-structure mutators
#: and the per-heartbeat scheduling path.  Each must declare a budget
#: (DT204) whether or not its author remembered the marker comment.
HOT_PATH_REGISTRY: Dict[str, Tuple[str, ...]] = {
    "repro/structures/dsl.py": (
        "DoubleSkipList.insert",
        "DoubleSkipList.remove",
        "DoubleSkipList.head_by_ct",
        "DoubleSkipList.head_by_priority",
        "DoubleSkipList.update_head_ct",
        "DoubleSkipList.update_priority",
        "DoubleSkipList.update_ct",
        "DoubleSkipList.get",
    ),
    "repro/structures/skiplist.py": (
        "DeterministicSkipList.insert",
        "DeterministicSkipList.delete",
        "DeterministicSkipList.peek_head",
        "DeterministicSkipList.pop_head",
        "DeterministicSkipList.find",
    ),
    "repro/core/scheduler.py": (
        "WohaScheduler.select_task",
        "WohaScheduler._advance_ct_heads",
        "_pick_task_in_workflow",
    ),
    "repro/cluster/jobtracker.py": (
        "JobTracker.heartbeat",
        "JobTracker._heartbeat_batched",
        "JobTracker._heartbeat_tick",
        "JobTracker._round_batched",
        "JobTracker._pick_tracker",
        "JobTracker._notify",
        "JobTracker._wake_parked",
        "JobTracker._tracker_quiescent",
        "JobTracker._launch",
        "JobTracker._complete_task",
    ),
    "repro/cluster/tasktracker.py": (
        "TaskTracker.free_slots",
        "TaskTracker.occupy",
        "TaskTracker.release",
    ),
    "repro/events.py": (
        "Simulator.schedule",
        "Simulator.run",
    ),
    "repro/schedulers/base.py": ("WorkflowScheduler.select_tasks",),
    "repro/schedulers/fifo.py": (
        "FifoScheduler.select_task",
        "FifoScheduler.select_tasks",
    ),
    "repro/schedulers/fair.py": ("FairScheduler.select_tasks",),
    "repro/metrics/collector.py": (
        "MetricsCollector.merge",
        "MetricsCollector.on_task_launch",
        "MetricsCollector.on_task_complete",
    ),
    "repro/serve/batching.py": (
        "BatchingPlanner.flush_now",
        "BatchingPlanner._flush",
    ),
    "repro/core/plancache.py": (
        "PlanCache.lookup",
        "PlanCache._commit",
    ),
}

#: Intraprocedural rules whose hits double as taint seeds.
_SEED_RULES = {"DT101", "DT102", "DT107"}
_SEED_LABELS = {
    "DT101": "set-order iteration",
    "DT102": "wall-clock/unseeded randomness",
    "DT107": "order-dependent single-element extraction",
}

#: module-function call pairs that enumerate the filesystem.
_FS_MODULE_CALLS = {
    ("os", "listdir"),
    ("os", "scandir"),
    ("os", "walk"),
    ("glob", "glob"),
    ("glob", "iglob"),
}
#: Path-like methods that enumerate the filesystem.
_FS_METHODS = {"iterdir", "glob", "rglob"}

#: Single-argument builtins doing O(n) work over their iterable.
_LINEAR_BUILTINS = {"sorted", "min", "max", "sum", "list", "tuple"}

#: Call wrappers through which boundedness passes to the arguments.
_BOUNDED_WRAPPERS = {"enumerate", "zip", "reversed", "sorted", "list", "tuple"}

#: Rank every scan site is charged at (a loop is O(n) until proven else).
_SCAN_RANK = BUDGET_GRAMMAR.index("O(n)")


@dataclass(frozen=True)
class TaintSeed:
    """One nondeterminism source: where it is and what it does."""

    module: str
    line: int
    description: str


@dataclass(frozen=True)
class _Taint:
    seed: TaintSeed
    via: Optional[str]  # next function qualname toward the seed, if any


@dataclass(frozen=True)
class _ScanSite:
    line: int
    description: str


# -- seed collection -----------------------------------------------------------


class _EnvFsSeedVisitor(ast.NodeVisitor):
    """os.environ reads and filesystem-listing calls."""

    def __init__(self) -> None:
        self.seeds: List[Tuple[int, str]] = []

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            node.attr == "environ"
            and isinstance(node.value, ast.Name)
            and node.value.id == "os"
        ):
            self.seeds.append((node.lineno, "os.environ read"))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            base_name = base.id if isinstance(base, ast.Name) else None
            if base_name is not None and (base_name, func.attr) in _FS_MODULE_CALLS:
                self.seeds.append(
                    (node.lineno, f"filesystem listing via {base_name}.{func.attr}()")
                )
            elif func.attr in _FS_METHODS and base_name not in ("glob",):
                self.seeds.append(
                    (node.lineno, f"filesystem listing via .{func.attr}()")
                )
        self.generic_visit(node)


def _seed_candidates(mod: ModuleInfo) -> List[Tuple[TaintSeed, Optional[str]]]:
    """Every candidate seed paired with the intra rule id that produced it
    (``None`` for the env/filesystem sources no intra rule covers)."""
    raw = scan_module(
        mod.tree,
        path=mod.key,
        decision_path=True,
        randomness_allowed=mod.randomness_allowed,
    )
    found: List[Tuple[TaintSeed, Optional[str]]] = [
        (TaintSeed(mod.key, v.line, _SEED_LABELS[v.rule]), v.rule)
        for v in raw
        if v.rule in _SEED_RULES
    ]
    env_fs = _EnvFsSeedVisitor()
    env_fs.visit(mod.tree)
    found.extend(
        (TaintSeed(mod.key, line, desc), None) for line, desc in env_fs.seeds
    )
    return sorted(set(found), key=lambda pair: (pair[0].line, pair[0].description))


def _collect_seeds(mod: ModuleInfo) -> List[TaintSeed]:
    """Every nondeterminism source in one module, wherever it lives.

    The intraprocedural scan runs with ``decision_path=True`` so DT101 and
    DT107 fire in *any* module — the point of taint is exactly that these
    sources sit outside decision paths.  Lines carrying an inline allow
    for the seed's rule (or DT201, or ``*``) are trusted and not seeded.
    """
    allows = inline_allows(mod.source)
    kept = []
    for seed, rule in _seed_candidates(mod):
        allowed = allows.get(seed.line, ())
        if "*" in allowed or "DT201" in allowed or (rule is not None and rule in allowed):
            continue
        kept.append(seed)
    return kept


def seed_allow_uses(mod: ModuleInfo) -> Set[Tuple[int, str]]:
    """``(line, rule-id)`` pairs of inline allows that suppressed a taint
    seed on that line.

    These allows consume a seed without ever producing a suppressed
    :class:`Violation` (the seed simply never enters the taint lattice),
    so the stale-suppression rule (DT304 in
    :mod:`repro.analysis.dataflow`) must credit them through this hook
    rather than through the engine's suppression ledger.
    """
    allows = inline_allows(mod.source)
    used: Set[Tuple[int, str]] = set()
    for seed, rule in _seed_candidates(mod):
        for rid in allows.get(seed.line, ()):
            if rid in ("*", "DT201") or (rule is not None and rid == rule):
                used.add((seed.line, rid))
    return used


# -- taint propagation ---------------------------------------------------------


def _propagate_taint(
    graph: CallGraph, direct: Dict[str, TaintSeed]
) -> Dict[str, _Taint]:
    """Caller-ward BFS from directly seeded functions; first hit wins,
    visiting in sorted order so chains are deterministic."""
    taint: Dict[str, _Taint] = {
        qualname: _Taint(seed, None) for qualname, seed in direct.items()
    }
    frontier = sorted(taint)
    while frontier:
        discovered: Set[str] = set()
        for qualname in frontier:
            for edge in sorted(
                graph.callers(qualname), key=lambda e: (e.caller, e.line)
            ):
                if edge.caller not in taint:
                    taint[edge.caller] = _Taint(taint[qualname].seed, qualname)
                    discovered.add(edge.caller)
        frontier = sorted(discovered)
    return taint


def _chain(taint: Dict[str, _Taint], start: str) -> List[str]:
    names = [start]
    while taint[names[-1]].via is not None:
        names.append(taint[names[-1]].via)  # type: ignore[arg-type]
    return names


# -- budget checking -----------------------------------------------------------


def _bounded(node: ast.AST) -> bool:
    """Can this iterable only ever yield a compile-time-constant number of
    elements?  Literals are; ``range(<const>)`` is; bounded wrappers pass
    boundedness through."""
    if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
        return True
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id == "range":
            return all(isinstance(arg, ast.Constant) for arg in node.args)
        if node.func.id in _BOUNDED_WRAPPERS:
            return bool(node.args) and all(_bounded(arg) for arg in node.args)
    return False


def _iter_snippet(node: ast.AST) -> str:
    # ast.unparse raises ValueError on nodes it cannot render and can
    # recurse past the limit on pathologically deep expressions; anything
    # else should surface, not be swallowed.
    try:
        text = ast.unparse(node)
    except (ValueError, RecursionError):  # pragma: no cover - exotic nodes
        return "<expression>"
    return text if len(text) <= 40 else text[:37] + "..."


def _scan_sites(fn: FunctionInfo) -> List[_ScanSite]:
    """O(n) work sites directly inside ``fn`` (nested defs excluded —
    they are graph nodes of their own and charge their callers by edge)."""
    sites: List[_ScanSite] = []

    def walk(node: ast.AST, root: bool = False) -> None:
        if not root and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return
        if isinstance(node, ast.For) and not _bounded(node.iter):
            sites.append(
                _ScanSite(
                    node.lineno, f"for-loop over {_iter_snippet(node.iter)}"
                )
            )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                if not _bounded(gen.iter):
                    sites.append(
                        _ScanSite(
                            node.lineno,
                            f"comprehension over {_iter_snippet(gen.iter)}",
                        )
                    )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _LINEAR_BUILTINS
            and len(node.args) == 1
            and not isinstance(node.args[0], (ast.GeneratorExp,))
            and not _bounded(node.args[0])
        ):
            sites.append(
                _ScanSite(
                    node.lineno,
                    f"{node.func.id}({_iter_snippet(node.args[0])}) linear scan",
                )
            )
        for child in ast.iter_child_nodes(node):
            walk(child)

    if fn.node is not None:
        walk(fn.node, root=True)
    return sites


def _precise_edges(graph: CallGraph, qualname: str) -> List[CallEdge]:
    edges = [e for e in graph.callees(qualname) if not e.ambiguous]
    return sorted(set(edges), key=lambda e: (e.line, e.callee, e.kind))


def _check_budgets(
    graph: CallGraph, sites_by_fn: Dict[str, List[_ScanSite]]
) -> List[Violation]:
    violations: List[Violation] = []
    for qualname in sorted(graph.functions):
        root = graph.functions[qualname]
        rank = root.budget_rank
        if rank is None:
            continue
        # DFS through undeclared callees; declared callees are boundaries
        # (their bodies are their own budget's business).
        stack: List[Tuple[str, Tuple[str, ...]]] = [(qualname, (qualname,))]
        visited = {qualname}
        while stack:
            current, chain = stack.pop()
            fn = graph.functions[current]
            rendered = " -> ".join(chain)
            for site in sites_by_fn.get(current, []):
                if _SCAN_RANK > rank:
                    violations.append(
                        Violation(
                            rule="DT203",
                            path=fn.module,
                            line=site.line,
                            col=0,
                            message=(
                                f"{site.description} is O(n) work but "
                                f"{root.name} declares budget {root.budget}; "
                                f"chain: {rendered}"
                            ),
                        )
                    )
            for edge in reversed(_precise_edges(graph, current)):
                callee = graph.functions.get(edge.callee)
                if callee is None:
                    continue
                if callee.budget is not None:
                    if callee.budget_rank > rank:
                        violations.append(
                            Violation(
                                rule="DT203",
                                path=fn.module,
                                line=edge.line,
                                col=0,
                                message=(
                                    f"call into {callee.qualname} (declared "
                                    f"{callee.budget}) exceeds {root.name}'s "
                                    f"budget {root.budget}; chain: {rendered}"
                                ),
                            )
                        )
                    continue
                if edge.callee not in visited:
                    visited.add(edge.callee)
                    stack.append((edge.callee, chain + (edge.callee,)))
    return violations


# -- the pass ------------------------------------------------------------------


def apply_hot_registry(graph: CallGraph) -> None:
    """Mark every built-in registry function hot on this graph (idempotent).

    DT204 here and the whole DT401-DT405 pass
    (:mod:`repro.analysis.perflint`) share this notion of "hot", so the
    registry is applied once, up front, by whoever drives the passes.
    """
    for mod_key, names in HOT_PATH_REGISTRY.items():
        mod = graph.modules.get(mod_key)
        if mod is None:
            continue
        for name in names:
            fn = mod.functions.get(name)
            if fn is not None:
                fn.hot_path = True


def analyze_graph(graph: CallGraph) -> List[Violation]:
    """Run DT201-DT204 over a built call graph; raw (unsuppressed)
    violations, each attributed to the module its line lives in."""
    violations: List[Violation] = []

    # Built-in hot-path obligations (applies before DT204).
    apply_hot_registry(graph)

    # -- DT201 ---------------------------------------------------------------
    direct: Dict[str, TaintSeed] = {}
    direct_lists: Dict[str, List[TaintSeed]] = {}
    for key in sorted(graph.modules):
        mod = graph.modules[key]
        for seed in _collect_seeds(mod):
            fn = graph.function_at(key, seed.line)
            if fn is None:
                continue  # module-level statement; no function to taint
            direct.setdefault(fn.qualname, seed)
            direct_lists.setdefault(fn.qualname, []).append(seed)
    taint = _propagate_taint(graph, direct)

    emitted: Set[Tuple[str, int, str]] = set()
    for edge in sorted(
        set(graph.edges), key=lambda e: (e.caller, e.line, e.callee, e.kind)
    ):
        caller = graph.functions.get(edge.caller)
        callee = graph.functions.get(edge.callee)
        if caller is None or callee is None:
            continue
        if not caller.decision_path or callee.decision_path:
            continue
        if edge.callee not in taint:
            continue
        dedup = (caller.module, edge.line, edge.callee)
        if dedup in emitted:
            continue
        emitted.add(dedup)
        info = taint[edge.callee]
        chain = [edge.caller] + _chain(taint, edge.callee)
        violations.append(
            Violation(
                rule="DT201",
                path=caller.module,
                line=edge.line,
                col=0,
                message=(
                    f"{info.seed.description} reaches decision path: "
                    f"{' -> '.join(chain)}; source at "
                    f"{info.seed.module}:{info.seed.line}"
                ),
            )
        )
    # A @decision_path function in a non-decision module with a source
    # directly inside it: the intra rules skip that module, so report here.
    for qualname in sorted(direct_lists):
        fn = graph.functions[qualname]
        if not fn.decision_path or graph.modules[fn.module].decision_path:
            continue
        for seed in direct_lists[qualname]:
            violations.append(
                Violation(
                    rule="DT201",
                    path=fn.module,
                    line=seed.line,
                    col=0,
                    message=(
                        f"{seed.description} directly inside @decision_path "
                        f"function {fn.name}"
                    ),
                )
            )

    # -- DT202 ---------------------------------------------------------------
    for dyn in sorted(
        set(graph.dynamic_calls), key=lambda d: (d.module, d.line, d.description)
    ):
        fn = graph.functions.get(dyn.function)
        if fn is None or not fn.decision_path or dyn.annotated:
            continue
        violations.append(
            Violation(
                rule="DT202",
                path=dyn.module,
                line=dyn.line,
                col=0,
                message=(
                    f"unresolved dynamic call in decision path ({dyn.description}); "
                    "resolve statically or declare targets with `# repro: calls[...]`"
                ),
            )
        )

    # -- DT203 ---------------------------------------------------------------
    sites_by_fn = {
        qualname: _scan_sites(fn) for qualname, fn in graph.functions.items()
    }
    violations.extend(_check_budgets(graph, sites_by_fn))

    # -- DT204 ---------------------------------------------------------------
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        if fn.hot_path and fn.budget is None:
            violations.append(
                Violation(
                    rule="DT204",
                    path=fn.module,
                    line=fn.line,
                    col=0,
                    message=(
                        f"hot-path function {fn.name} has no declared budget; "
                        "add `# repro: budget O(1)|O(log n)|O(n)` on its def"
                    ),
                )
            )

    return sorted(violations, key=lambda v: (v.path, v.line, v.rule, v.message))
