"""The determinism rule catalog (DT101-DT106) and its AST visitor.

WOHA's correctness argument is determinism all the way down: Algorithm 1
must emit the same progress-requirement list ``F_i`` for the same workflow
(the plan cache and the byte-equivalence oracle depend on it), and the
Double Skip List must stay deterministic for the §IV complexity claims to
hold.  One stray ``set`` iteration or unseeded ``random`` call in a
decision path silently breaks cache hits, trace invariance and every
figure benchmark — this module encodes those project contracts as
pyflakes-style syntactic rules.

Rule catalog (see DESIGN.md §8 for the full rationale):

``DT101`` unordered-set-iteration
    Iterating a set-typed expression in an order-sensitive position (a
    ``for`` loop, a list/dict comprehension, ``list()``/``tuple()``/
    ``enumerate()``/``reversed()``/``iter()``/``join()``) inside a
    *decision path* module.  Set iteration order follows per-process hash
    randomisation for strings and memory addresses for objects, so any
    decision derived from it varies across interpreter invocations.
    Order-insensitive consumers (``sorted``, ``set``/``frozenset``,
    ``len``, ``sum``, ``min``, ``max``, ``any``, ``all``, set
    comprehensions) are allowed.
``DT102`` wall-clock-or-unseeded-random
    ``time.time()``/``datetime.now()``-style wall-clock reads, the global
    ``random`` module, legacy global ``numpy.random`` functions,
    ``uuid.uuid4`` or ``os.urandom`` anywhere outside ``noise.py`` and
    ``workloads/`` (the two places randomness is deliberately — and
    seedably — injected).
``DT103`` float-equality-on-durations
    ``==``/``!=`` where an operand's identifier names a duration-like
    quantity (deadline, duration, makespan, ttd, tardiness, workspan).
    Exact float comparison on derived times is almost always a latent
    platform dependence; compare with an ordering or an epsilon, or
    suppress with a justification where exact equality is the contract.
``DT104`` frozen-model-mutation
    Attribute assignment through a name that conventionally binds an
    immutable description (``workflow``, ``wf``, ``plan``, ``wjob``,
    ``definition``), or ``object.__setattr__`` outside ``__init__``/
    ``__post_init__``.  ``Workflow``/``ProgressPlan`` immutability is what
    makes plan-cache sharing safe.
``DT105`` slots-consistency
    In a class that declares a literal ``__slots__``, assignment to a
    ``self`` attribute missing from the declaration.  Such writes raise
    ``AttributeError`` only on the first execution of that path — lint
    catches them statically.
``DT106`` eq-without-hash
    A class (in a decision path) defining ``__eq__`` without ``__hash__``:
    Python then sets ``__hash__ = None`` and the type silently stops being
    usable as a cache key.
``DT107`` order-dependent-single-element-extraction
    ``next(iter(<set>))``, zero-argument ``.pop()`` on a set-typed
    expression, or ``.popitem()`` in a decision path.  Each extracts *one*
    element whose identity depends on insertion/hash order — the sneakiest
    form of DT101 because no loop is visible.  (``dict.popitem()`` is
    LIFO on CPython ≥ 3.7, but which key is last inserted is itself
    history-dependent; decisions must not hang off it.)

Rules DT201-DT204 are the *interprocedural* pass (``lint --interproc``);
they live in :mod:`repro.analysis.interproc`.  Rules DT301-DT305 are the
*flow-sensitive dataflow* pass layered on the same call graph; they live
in :mod:`repro.analysis.dataflow`.  Rules DT401-DT405 are the *hot-path
performance* pass over the same graph's budget-declared/hot-path
functions; they live in :mod:`repro.analysis.perflint`.  All are
registered here so the baseline parser and the CLI catalog know them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["Violation", "RULES", "DECISION_PATH_DIRS", "scan_module"]


@dataclass(frozen=True)
class Violation:
    """One rule hit: where, which rule, and a human-readable message."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


#: rule id -> one-line description (the catalog the CLI prints).
RULES: Dict[str, str] = {
    "DT101": "iteration over a set-typed expression without an explicit ordering (decision paths)",
    "DT102": "wall-clock read or unseeded randomness outside noise.py / workloads/",
    "DT103": "float == / != on a duration- or deadline-like value",
    "DT104": "mutation of an immutable model object (Workflow / ProgressPlan) after construction",
    "DT105": "assignment to a self attribute missing from the class's __slots__",
    "DT106": "__eq__ defined without __hash__ (type silently becomes unhashable)",
    "DT107": "order-dependent single-element extraction (next(iter(set)), set.pop(), dict.popitem()) in a decision path",
    "DT201": "nondeterministic source reaches a decision-path function through the call graph",
    "DT202": "unresolved dynamic call inside a decision-path function (annotate with `# repro: calls[...]`)",
    "DT203": "work exceeding the caller's declared complexity budget (`# repro: budget O(...)`)",
    "DT204": "hot-path function without a declared complexity budget",
    "DT301": "module/class-level mutable state written on a path reachable from a fork/service entrypoint",
    "DT302": "unpicklable callable (lambda, closure, bound method) crossing the multiprocessing Pool boundary",
    "DT303": "paired mutations of contract-protected state span a may-raise operation, or a broad except swallows ContractError",
    "DT304": "stale suppression: an allow[...]/calls[...]/budget directive that no longer suppresses or declares anything",
    "DT305": "wall-clock or OS-entropy value compared or added to a simulated-time expression",
    "DT401": "heap allocation (literal/comprehension/string build) inside a hot loop",
    "DT402": "attribute chain loaded repeatedly in a hot region; pre-bind it to a local",
    "DT403": "un-gated tracing/logging/contract call in a hot function",
    "DT404": "generator/iterator indirection in a function with a declared O(1)/O(log n) budget",
    "DT405": "try/except used as control flow where a lookup-with-default exists, in a hot region",
}

#: Package sub-directories whose modules take scheduling decisions.  Set
#: iteration order (DT101) and unhashable types (DT106) only matter where
#: the iteration feeds a decision; model/metrics/report code is exempt.
DECISION_PATH_DIRS: Tuple[str, ...] = ("core", "schedulers", "structures", "cluster")

#: Modules allowed to use randomness (they seed it explicitly).
_RANDOMNESS_ALLOWED = ("noise.py", "workloads/")

# -- DT101 helpers -----------------------------------------------------------

#: Attributes known (project-wide) to hold set types on model objects.
_SET_ATTRS = {"prerequisites", "completed"}
#: Zero/one-argument methods known to return frozensets.
_SET_METHODS = {"dependents", "prerequisites", "ancestors", "descendants"}
#: Set-algebra methods: set-typed result when the receiver is set-typed.
_SET_ALGEBRA = {"difference", "union", "intersection", "symmetric_difference", "copy"}
#: Subscripted containers whose values are sets.
_SET_VALUED_MAPS = {"pending_prereqs"}
#: Calls whose consumption of an iterable is order-insensitive.
_ORDER_FREE_CALLS = {"sorted", "set", "frozenset", "len", "sum", "min", "max", "any", "all"}
#: Calls that materialise iteration order (order-sensitive consumers).
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "reversed", "iter", "next"}

_SET_OPS = (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)

_DURATIONISH = ("deadline", "duration", "makespan", "ttd", "tardiness", "workspan")

_WALLCLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
    ("os", "urandom"),
}

#: numpy.random entry points that are fine: explicitly seeded constructors.
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937"}

#: Names conventionally bound to immutable model descriptions (DT104).
_FROZEN_MODEL_NAMES = {"workflow", "wf", "plan", "wjob", "definition"}
_FROZEN_MODEL_SUFFIXES = ("_workflow", "_plan", "_wjob")

#: Methods where object.__setattr__ on self is the sanctioned frozen-
#: dataclass construction idiom.
_SETATTR_OK_METHODS = {"__init__", "__post_init__", "__setstate__"}


def _is_setish(node: ast.AST) -> bool:
    """Is this expression syntactically recognisable as a set?

    Purely syntactic (no type inference): set/frozenset literals and
    calls, set comprehensions, set-algebra over a set-ish operand, and the
    project's known set-returning attributes and methods.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in _SET_METHODS:
                return True
            if func.attr in _SET_ALGEBRA and _is_setish(func.value):
                return True
        return False
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ATTRS
    if isinstance(node, ast.Subscript):
        value = node.value
        return isinstance(value, ast.Attribute) and value.attr in _SET_VALUED_MAPS
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_setish(node.left) or _is_setish(node.right)
    return False


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a name/attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _durationish(node: ast.AST) -> Optional[str]:
    ident = _terminal_identifier(node)
    if ident is None:
        return None
    lowered = ident.lower()
    for marker in _DURATIONISH:
        if marker in lowered:
            return ident
    return None


class _LintVisitor(ast.NodeVisitor):
    """Single-pass visitor emitting violations for every rule."""

    def __init__(self, path: str, decision_path: bool, randomness_allowed: bool) -> None:
        self.path = path
        self.decision_path = decision_path
        self.randomness_allowed = randomness_allowed
        self.violations: List[Violation] = []
        self._parents: List[ast.AST] = []
        self._function_stack: List[str] = []
        #: iter(...) call nodes already reported as part of a DT107
        #: ``next(iter(S))`` — DT101 skips them to avoid double-flagging.
        self._dt107_inner: Set[int] = set()

    # -- plumbing ----------------------------------------------------------

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def generic_visit(self, node: ast.AST) -> None:
        self._parents.append(node)
        try:
            super().generic_visit(node)
        finally:
            self._parents.pop()

    def _parent(self) -> Optional[ast.AST]:
        return self._parents[-1] if self._parents else None

    # -- DT101: set iteration ------------------------------------------------

    def _flag_set_iteration(self, iterable: ast.AST, context: str) -> None:
        if self.decision_path and _is_setish(iterable):
            self._emit(
                "DT101",
                iterable,
                f"iteration over a set in {context} depends on hash order; "
                "wrap in sorted(...) or use an ordered collection",
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag_set_iteration(node.iter, "a for loop")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, order_sensitive=True)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, order_sensitive=True)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # The result is itself unordered: iteration order cannot leak out.
        self._visit_comprehension(node, order_sensitive=False)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        # A generator's order matters exactly when its consumer's does.
        parent = self._parent()
        sensitive = True
        if isinstance(parent, ast.Call):
            callee = parent.func
            name = callee.id if isinstance(callee, ast.Name) else None
            if name in _ORDER_FREE_CALLS:
                sensitive = False
        self._visit_comprehension(node, order_sensitive=sensitive)

    def _visit_comprehension(self, node: ast.AST, order_sensitive: bool) -> None:
        if order_sensitive:
            for gen in node.generators:  # type: ignore[attr-defined]
                self._flag_set_iteration(gen.iter, "a comprehension")
        self.generic_visit(node)

    # -- Calls: DT101 consumers + DT102 ---------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        self._check_single_extraction(node)
        # DT101: list(S) / tuple(S) / enumerate(S) / "x".join(S) over a set.
        if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_CALLS:
            for arg in node.args[:1]:
                if id(arg) not in self._dt107_inner:
                    self._flag_set_iteration(arg, f"{func.id}(...)")
        if isinstance(func, ast.Attribute) and func.attr == "join" and node.args:
            self._flag_set_iteration(node.args[0], "str.join(...)")
        self._check_randomness(node)
        self._check_frozen_setattr(node)
        self.generic_visit(node)

    # -- DT107: order-dependent single-element extraction ----------------------

    def _check_single_extraction(self, node: ast.Call) -> None:
        if not self.decision_path:
            return
        func = node.func
        # next(iter(S)) over a set: picks "some" element by hash order.
        if (
            isinstance(func, ast.Name)
            and func.id == "next"
            and node.args
            and isinstance(node.args[0], ast.Call)
            and isinstance(node.args[0].func, ast.Name)
            and node.args[0].func.id == "iter"
            and node.args[0].args
            and _is_setish(node.args[0].args[0])
        ):
            inner = node.args[0]
            self._dt107_inner.add(id(inner))
            self._dt107_inner.add(id(inner.args[0]))
            self._emit(
                "DT107",
                node,
                "next(iter(<set>)) extracts a hash-order-dependent element; "
                "use min/max or sort first",
            )
            return
        if isinstance(func, ast.Attribute) and not node.args and not node.keywords:
            # set.pop() removes an arbitrary element; dict.popitem() the
            # most recently inserted — both are history/hash dependent.
            if func.attr == "pop" and _is_setish(func.value):
                self._emit(
                    "DT107",
                    node,
                    "set.pop() removes a hash-order-dependent element; "
                    "pick deterministically (min/sorted) then discard",
                )
            elif func.attr == "popitem":
                self._emit(
                    "DT107",
                    node,
                    ".popitem() extracts an insertion-history-dependent entry; "
                    "key the choice explicitly instead",
                )

    def _check_randomness(self, node: ast.Call) -> None:
        if self.randomness_allowed:
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        # time.time() / datetime.now() / uuid.uuid4() / os.urandom()
        base_name = _terminal_identifier(base)
        if base_name is not None and (base_name, func.attr) in _WALLCLOCK_CALLS:
            self._emit(
                "DT102",
                node,
                f"{base_name}.{func.attr}() is wall-clock/entropy; decision code "
                "must be a pure function of its inputs",
            )
            return
        # random.random() etc: the process-global, implicitly seeded RNG.
        if isinstance(base, ast.Name) and base.id == "random":
            self._emit(
                "DT102",
                node,
                f"random.{func.attr}() uses the global RNG; thread a seeded "
                "numpy Generator through instead",
            )
            return
        # np.random.<legacy fn>: the global numpy RNG (default_rng is fine).
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in {"np", "numpy"}
            and func.attr not in _NP_RANDOM_OK
        ):
            self._emit(
                "DT102",
                node,
                f"numpy.random.{func.attr}() uses the global numpy RNG; "
                "use numpy.random.default_rng(seed)",
            )

    # -- DT103: float equality ------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side in (left, right):
                ident = _durationish(side)
                if ident is not None:
                    self._emit(
                        "DT103",
                        node,
                        f"exact float comparison on {ident!r}; use an ordering "
                        "or an epsilon (or justify with a suppression)",
                    )
                    break
        self.generic_visit(node)

    # -- DT104: frozen-model mutation -----------------------------------------

    @staticmethod
    def _frozen_model_base(target: ast.AST) -> Optional[str]:
        if not isinstance(target, ast.Attribute):
            return None
        base = target.value
        if not isinstance(base, ast.Name):
            return None
        name = base.id
        if name in _FROZEN_MODEL_NAMES or name.endswith(_FROZEN_MODEL_SUFFIXES):
            return name
        return None

    def _check_mutation_targets(self, targets: Sequence[ast.AST], node: ast.AST) -> None:
        for target in targets:
            name = self._frozen_model_base(target)
            if name is not None:
                self._emit(
                    "DT104",
                    node,
                    f"attribute assignment on {name!r} mutates an immutable "
                    "model object after construction",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_mutation_targets(node.targets, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_mutation_targets([node.target], node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_mutation_targets([node.target], node)
        self.generic_visit(node)

    def _check_frozen_setattr(self, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        ):
            return
        enclosing = self._function_stack[-1] if self._function_stack else None
        if enclosing in _SETATTR_OK_METHODS:
            return
        self._emit(
            "DT104",
            node,
            "object.__setattr__ outside __init__/__post_init__ defeats a "
            "frozen dataclass's immutability",
        )

    # -- DT105 / DT106: class-level checks -------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_slots(node)
        self._check_eq_hash(node)
        self.generic_visit(node)

    @staticmethod
    def _literal_slots(node: ast.ClassDef) -> Optional[Set[str]]:
        for stmt in node.body:
            if not isinstance(stmt, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets
            ):
                continue
            value = stmt.value
            if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                names: Set[str] = set()
                for elt in value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                        names.add(elt.value)
                    else:
                        return None  # computed slots: give up
                return names
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                return {value.value}
            return None
        return None

    def _check_slots(self, node: ast.ClassDef) -> None:
        slots = self._literal_slots(node)
        if slots is None:
            return
        # Bases may contribute __dict__ or more slots; only object-rooted
        # classes are checked (conservative: no false positives).
        if any(not (isinstance(b, ast.Name) and b.id == "object") for b in node.bases):
            return
        class_level = {
            t.id
            for stmt in node.body
            if isinstance(stmt, ast.Assign)
            for t in stmt.targets
            if isinstance(t, ast.Name)
        }
        method_names = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for method in ast.walk(node):
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(method):
                targets: List[ast.AST] = []
                if isinstance(stmt, ast.Assign):
                    targets = list(stmt.targets)
                elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                    targets = [stmt.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr not in slots
                        and target.attr not in class_level
                        and target.attr not in method_names
                    ):
                        self._emit(
                            "DT105",
                            target,
                            f"self.{target.attr} assigned but missing from "
                            f"{node.name}.__slots__",
                        )

    def _check_eq_hash(self, node: ast.ClassDef) -> None:
        if not self.decision_path:
            return
        defined = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        assigned = {
            t.id
            for stmt in node.body
            if isinstance(stmt, ast.Assign)
            for t in stmt.targets
            if isinstance(t, ast.Name)
        }
        if "__eq__" in defined and "__hash__" not in defined | assigned:
            self._emit(
                "DT106",
                node,
                f"{node.name} defines __eq__ without __hash__: instances become "
                "unhashable and cannot serve as cache keys",
            )

    # -- function-name tracking (for the __setattr__ whitelist) ---------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node.name)
        try:
            self.generic_visit(node)
        finally:
            self._function_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function_stack.append(node.name)
        try:
            self.generic_visit(node)
        finally:
            self._function_stack.pop()


def scan_module(
    tree: ast.AST,
    path: str,
    decision_path: bool,
    randomness_allowed: bool,
) -> List[Violation]:
    """Run every rule over one parsed module; returns raw (unsuppressed)
    violations in source order."""
    visitor = _LintVisitor(path, decision_path, randomness_allowed)
    visitor.visit(tree)
    return sorted(visitor.violations, key=lambda v: (v.line, v.col, v.rule))
