"""Whole-program call graph over the ``repro`` package (DESIGN.md §9).

The intraprocedural lint (DT101-DT107) judges each file alone, so a
nondeterministic helper *called from* a decision path, or an O(n_w) scan
smuggled behind a function call, sails through.  This module builds the
call graph those interprocedural rules (:mod:`repro.analysis.interproc`)
walk.

Resolution is deliberately syntactic — no imports are executed — and
layered from precise to conservative:

1. **Direct calls**: bare names resolved through the module's own
   functions/classes and its ``import``/``from ... import`` table
   (absolute and relative forms).
2. **Methods**: ``self.m(...)`` through the enclosing class and its
   resolvable bases; ``Class.m(...)``; ``x.m(...)`` where ``x`` is a local
   variable assigned from a known constructor in the same function.
3. **Class-attribute lookup (CHA)**: ``expr.m(...)`` falls back to every
   project class defining ``m``.  A single candidate yields a precise
   edge; several yield *ambiguous* edges (used by the taint engine, but
   excluded from budget arithmetic — see interproc).
4. **Registry/factory dispatch**: module-level dict literals whose values
   are callables (``SCHEDULER_REGISTRY``, ``QUEUE_BACKENDS``...) become
   dispatch tables; subscripting one and calling the result fans out to
   every registered target.
5. **Escape hatch**: ``# repro: calls[a.b.c, Class.m]`` on a call line
   adds the listed edges and marks the line's dynamic calls resolved.

Anything still unresolved whose callee is a first-class value (a
parameter, a ``getattr`` result, a subscript) is recorded as a
:class:`DynamicCall` — rule DT202 fires on those inside decision paths.

Budget declarations (``# repro: budget O(1)|O(log n)|O(n)`` on or directly
above a ``def``), ``# repro: hot-path`` markers and the
``@decision_path``/``@hot_path`` decorators of
:mod:`repro.analysis.annotations` are parsed here and attached to
:class:`FunctionInfo` nodes for the budget checker.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.engine import (
    is_decision_path_module,
    module_key,
    randomness_allowed_module,
)

__all__ = [
    "BUDGET_GRAMMAR",
    "CallEdge",
    "CallGraph",
    "DynamicCall",
    "FunctionInfo",
    "ModuleInfo",
    "build_call_graph",
    "build_call_graph_from_paths",
    "parse_budget",
]

#: The declared-complexity grammar, least to most expensive.  Ranks are
#: positions in this tuple; the checker compares ranks, never strings.
BUDGET_GRAMMAR: Tuple[str, ...] = ("O(1)", "O(log n)", "O(n)")

_BUDGET_RE = re.compile(r"#\s*repro:\s*budget\s+(O\((?:1|log n|n)\))")
_HOT_PATH_RE = re.compile(r"#\s*repro:\s*hot-path\b")
_CALLS_RE = re.compile(r"#\s*repro:\s*calls\[([^\]]*)\]")
_ENTRYPOINT_RE = re.compile(r"#\s*repro:\s*entrypoint\[(fork|service)\]")

#: Names callable without producing an edge (Python builtins and friends).
_BUILTINS = frozenset(
    """abs all any ascii bin bool bytearray bytes callable chr classmethod
    complex delattr dict dir divmod enumerate eval exec filter float format
    frozenset getattr globals hasattr hash hex id input int isinstance
    issubclass iter len list locals map max memoryview min next object oct
    open ord pow print property range repr reversed round set setattr slice
    sorted staticmethod str sum super tuple type vars zip
    ValueError TypeError KeyError IndexError RuntimeError AssertionError
    AttributeError NotImplementedError StopIteration OSError IOError
    Exception BaseException DeprecationWarning UserWarning""".split()
)


def parse_budget(text: str) -> Optional[str]:
    """The budget declared by one source line, if any."""
    match = _BUDGET_RE.search(text)
    return match.group(1) if match else None


@dataclass
class FunctionInfo:
    """One function or method node of the graph."""

    qualname: str  # "repro/core/scheduler.py::WohaScheduler.select_task"
    module: str  # module key ("repro/core/scheduler.py")
    name: str  # in-module dotted name ("WohaScheduler.select_task")
    line: int
    end_line: int
    decision_path: bool = False
    hot_path: bool = False
    budget: Optional[str] = None
    node: Optional[ast.AST] = field(default=None, repr=False, compare=False)
    owner_class: Optional[str] = None  # owning class name, methods only
    entrypoint: Optional[str] = None  # "fork" | "service" boundary kind

    @property
    def budget_rank(self) -> Optional[int]:
        return BUDGET_GRAMMAR.index(self.budget) if self.budget else None


@dataclass(frozen=True)
class CallEdge:
    """A resolved call: ``caller`` may invoke ``callee`` at ``line``."""

    caller: str
    callee: str
    line: int
    kind: str  # direct | self | class | instance | cha | registry | annotation
    ambiguous: bool = False


@dataclass(frozen=True)
class DynamicCall:
    """A call the builder could not resolve to any project function."""

    function: str  # caller qualname
    module: str
    line: int
    description: str
    annotated: bool = False  # a `# repro: calls[...]` covered this line


@dataclass
class _ClassInfo:
    name: str
    module: str
    line: int
    bases: List[str] = field(default_factory=list)  # raw dotted base refs
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Everything the resolver knows about one analysed module."""

    key: str
    dotted: str
    source: str
    tree: ast.AST = field(repr=False)
    decision_path: bool = False
    randomness_allowed: bool = False
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, _ClassInfo] = field(default_factory=dict)
    imports: Dict[str, str] = field(default_factory=dict)  # alias -> dotted
    tables: Dict[str, List[str]] = field(default_factory=dict)  # dict name -> refs
    budget_lines: Dict[int, str] = field(default_factory=dict)
    hot_lines: Set[int] = field(default_factory=set)
    calls_lines: Dict[int, List[str]] = field(default_factory=dict)
    entry_lines: Dict[int, str] = field(default_factory=dict)  # line -> kind


class CallGraph:
    """The resolved whole-program graph plus its unresolved remainder."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.edges: List[CallEdge] = []
        self.dynamic_calls: List[DynamicCall] = []
        self._out: Dict[str, List[CallEdge]] = {}
        self._in: Dict[str, List[CallEdge]] = {}

    # -- construction (builder-internal) -----------------------------------

    def _add_edge(self, edge: CallEdge) -> None:
        self.edges.append(edge)
        self._out.setdefault(edge.caller, []).append(edge)
        self._in.setdefault(edge.callee, []).append(edge)

    # -- queries -------------------------------------------------------------

    def callees(self, qualname: str) -> List[CallEdge]:
        return self._out.get(qualname, [])

    def callers(self, qualname: str) -> List[CallEdge]:
        return self._in.get(qualname, [])

    def function_at(self, module: str, line: int) -> Optional[FunctionInfo]:
        """The innermost function of ``module`` whose span contains ``line``."""
        best: Optional[FunctionInfo] = None
        for fn in self.modules[module].functions.values() if module in self.modules else ():
            if fn.line <= line <= fn.end_line:
                if best is None or fn.line > best.line:
                    best = fn
        return best

    # -- exports --------------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        """A deterministic JSON-serialisable dump of nodes and edges."""
        return {
            "modules": sorted(self.modules),
            "functions": [
                {
                    "qualname": fn.qualname,
                    "module": fn.module,
                    "name": fn.name,
                    "line": fn.line,
                    "decision_path": fn.decision_path,
                    "hot_path": fn.hot_path,
                    "budget": fn.budget,
                    "entrypoint": fn.entrypoint,
                }
                for _, fn in sorted(self.functions.items())
            ],
            "edges": [
                {
                    "caller": e.caller,
                    "callee": e.callee,
                    "line": e.line,
                    "kind": e.kind,
                    "ambiguous": e.ambiguous,
                }
                for e in sorted(
                    set(self.edges), key=lambda e: (e.caller, e.callee, e.line, e.kind)
                )
            ],
            "dynamic_calls": [
                {
                    "function": d.function,
                    "line": d.line,
                    "description": d.description,
                    "annotated": d.annotated,
                }
                for d in sorted(
                    set(self.dynamic_calls), key=lambda d: (d.module, d.line, d.description)
                )
            ],
        }

    def to_dot(self) -> str:
        """GraphViz export: decision-path nodes boxed, budgets as labels."""
        lines = [
            "digraph callgraph {",
            "  rankdir=LR;",
            '  node [fontsize=9, shape=ellipse];',
        ]
        for qualname, fn in sorted(self.functions.items()):
            label = fn.qualname.replace('"', "'")
            attrs = [f'label="{label}' + (f"\\n{fn.budget}" if fn.budget else "") + '"']
            if fn.decision_path:
                attrs.append("shape=box")
            if fn.hot_path or fn.budget:
                attrs.append('style=filled, fillcolor="#f0f0f0"')
            lines.append(f'  "{qualname}" [{", ".join(attrs)}];')
        for edge in sorted(set(self.edges), key=lambda e: (e.caller, e.callee, e.line, e.kind)):
            style = ', style=dashed' if edge.ambiguous else ""
            lines.append(
                f'  "{edge.caller}" -> "{edge.callee}" [label="{edge.kind}"{style}];'
            )
        lines.append("}")
        return "\n".join(lines) + "\n"


# -- pass 1: module indexing ---------------------------------------------------


def _dotted_module_name(key: str) -> str:
    """``repro/core/scheduler.py`` -> ``repro.core.scheduler``; loose files
    become top-level modules named by their stem."""
    trimmed = key[:-3] if key.endswith(".py") else key
    if trimmed.endswith("/__init__"):
        trimmed = trimmed[: -len("/__init__")]
    return trimmed.replace("/", ".")


def _decorator_marks(node: ast.AST) -> Tuple[bool, bool, Optional[str]]:
    """(decision_path, hot_path, entrypoint kind) from a def's decorators."""
    decision = hot = False
    entry: Optional[str] = None
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        ident = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if ident == "decision_path":
            decision = True
        elif ident == "hot_path":
            hot = True
        elif ident == "entrypoint" and isinstance(dec, ast.Call) and dec.args:
            arg = dec.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                entry = arg.value
    return decision, hot, entry


def _ref_string(node: ast.AST) -> Optional[str]:
    """A Name/Attribute chain as a dotted string, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _table_targets(value: ast.Dict) -> List[str]:
    """Callable refs registered in a module-level dispatch-dict literal."""
    refs: List[str] = []
    for item in value.values:
        if isinstance(item, ast.Lambda):
            for call in ast.walk(item.body):
                if isinstance(call, ast.Call):
                    ref = _ref_string(call.func)
                    if ref is not None:
                        refs.append(ref)
        else:
            ref = _ref_string(item)
            if ref is not None:
                refs.append(ref)
    return refs


def _index_module(key: str, source: str, tree: ast.AST) -> ModuleInfo:
    info = ModuleInfo(
        key=key,
        dotted=_dotted_module_name(key),
        source=source,
        tree=tree,
        decision_path=is_decision_path_module(key, source),
        randomness_allowed=randomness_allowed_module(key, source),
    )
    for lineno, line in enumerate(source.splitlines(), start=1):
        budget = parse_budget(line)
        if budget is not None:
            info.budget_lines[lineno] = budget
        if _HOT_PATH_RE.search(line):
            info.hot_lines.add(lineno)
        calls = _CALLS_RE.search(line)
        if calls is not None:
            targets = [t.strip() for t in calls.group(1).split(",") if t.strip()]
            info.calls_lines[lineno] = targets
        entry = _ENTRYPOINT_RE.search(line)
        if entry is not None:
            info.entry_lines[lineno] = entry.group(1)

    def add_function(node: ast.AST, name: str, owner: Optional[str]) -> FunctionInfo:
        decision, hot, entry = _decorator_marks(node)
        fn = FunctionInfo(
            qualname=f"{key}::{name}",
            module=key,
            name=name,
            line=node.lineno,
            end_line=getattr(node, "end_lineno", node.lineno),
            decision_path=info.decision_path or decision,
            hot_path=hot,
            budget=info.budget_lines.get(node.lineno)
            or info.budget_lines.get(node.lineno - 1),
            node=node,
            owner_class=owner,
            entrypoint=entry
            or info.entry_lines.get(node.lineno)
            or info.entry_lines.get(node.lineno - 1),
        )
        if not fn.hot_path:
            fn.hot_path = bool(
                {node.lineno, node.lineno - 1} & info.hot_lines
            )
        info.functions[name] = fn
        return fn

    def walk_body(body: Sequence[ast.stmt], prefix: str, owner: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{stmt.name}"
                fn = add_function(stmt, name, owner)
                if owner is not None and prefix.count(".") == 1:
                    info.classes[owner].methods[stmt.name] = fn
                walk_body(stmt.body, f"{name}.", owner)
            elif isinstance(stmt, ast.ClassDef) and not prefix:
                cls = _ClassInfo(
                    name=stmt.name,
                    module=key,
                    line=stmt.lineno,
                    bases=[r for r in (_ref_string(b) for b in stmt.bases) if r],
                )
                info.classes[stmt.name] = cls
                walk_body(stmt.body, f"{stmt.name}.", stmt.name)

    walk_body(tree.body, "", None)

    for stmt in tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            _record_import(info, stmt)
        elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Dict):
            targets = _table_targets(stmt.value)
            if targets:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        info.tables[target.id] = targets
    return info


def _record_import(info: ModuleInfo, stmt: ast.stmt) -> None:
    if isinstance(stmt, ast.Import):
        for alias in stmt.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            info.imports[local] = target
    elif isinstance(stmt, ast.ImportFrom):
        if stmt.level:
            # Level 1 is the containing package: the module's own dotted
            # name when it *is* a package (__init__), its parent otherwise.
            pkg_parts = info.dotted.split(".")
            if not info.key.endswith("__init__.py"):
                pkg_parts = pkg_parts[:-1]
            base = ".".join(pkg_parts[: len(pkg_parts) - (stmt.level - 1)])
            prefix = f"{base}.{stmt.module}" if stmt.module else base
        else:
            prefix = stmt.module or ""
        for alias in stmt.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            info.imports[local] = f"{prefix}.{alias.name}" if prefix else alias.name


# -- pass 2: call resolution ---------------------------------------------------


class _Program:
    """Cross-module lookup state shared by the resolver."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self.by_dotted: Dict[str, ModuleInfo] = {m.dotted: m for m in modules.values()}
        # CHA index: method name -> all project methods with that name.
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        for mod in modules.values():
            for cls in mod.classes.values():
                for mname, fn in cls.methods.items():
                    self.methods_by_name.setdefault(mname, []).append(fn)
        for fns in self.methods_by_name.values():
            fns.sort(key=lambda f: f.qualname)

    # dotted-reference resolution ------------------------------------------

    def resolve_dotted(self, mod: ModuleInfo, dotted: str):
        """Resolve a dotted ref in ``mod``'s namespace.

        Returns ``("function", FunctionInfo)``, ``("class", _ClassInfo)``,
        ``("module", ModuleInfo)``, ``("external", None)`` or
        ``(None, None)`` (unknown name).
        """
        head, _, rest = dotted.partition(".")
        # Local names shadow imports.
        if not rest:
            if head in mod.functions:
                return "function", mod.functions[head]
            if head in mod.classes:
                return "class", mod.classes[head]
        elif head in mod.classes:
            method = self._class_method(mod.classes[head], rest)
            if method is not None:
                return "function", method
        if head in mod.imports:
            return self._resolve_absolute(mod.imports[head] + (f".{rest}" if rest else ""))
        return self._resolve_absolute(dotted)

    def _resolve_absolute(self, dotted: str):
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            target = self.by_dotted.get(prefix)
            if target is None:
                continue
            rest = parts[cut:]
            if not rest:
                return "module", target
            name = rest[0]
            if name in target.classes:
                cls = target.classes[name]
                if len(rest) == 1:
                    return "class", cls
                method = self._class_method(cls, ".".join(rest[1:]))
                if method is not None:
                    return "function", method
                return None, None
            fn = target.functions.get(".".join(rest))
            if fn is not None:
                return "function", fn
            return None, None
        root = parts[0]
        known_roots = {m.dotted.split(".")[0] for m in self.modules.values()}
        return ("external", None) if root not in known_roots else (None, None)

    def _class_method(self, cls: _ClassInfo, name: str, _seen: Optional[Set[str]] = None):
        """Look ``name`` up on ``cls`` and its resolvable bases."""
        if name in cls.methods:
            return cls.methods[name]
        seen = _seen if _seen is not None else set()
        marker = f"{cls.module}::{cls.name}"
        if marker in seen:
            return None
        seen.add(marker)
        mod = self.modules[cls.module]
        for base_ref in cls.bases:
            kind, obj = self.resolve_dotted(mod, base_ref)
            if kind == "class":
                found = self._class_method(obj, name, seen)
                if found is not None:
                    return found
        return None

    def constructor_of(self, cls: _ClassInfo) -> Optional[FunctionInfo]:
        return self._class_method(cls, "__init__")


class _FunctionResolver(ast.NodeVisitor):
    """Resolve every call inside one function body into edges."""

    def __init__(
        self,
        program: _Program,
        graph: CallGraph,
        mod: ModuleInfo,
        fn: FunctionInfo,
    ) -> None:
        self.program = program
        self.graph = graph
        self.mod = mod
        self.fn = fn
        self.env: Dict[str, object] = {}  # local name -> "param" | value AST
        node = fn.node
        args = node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            self.env[arg.arg] = "param"
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                self.env[extra.arg] = "param"
        for stmt in ast.walk(node):
            targets: List[ast.AST] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    self.env[target.id] = stmt.value
        # Nested defs are callable locals.
        for stmt in node.body if hasattr(node, "body") else []:
            self._collect_nested(stmt)

    def _collect_nested(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = self.mod.functions.get(f"{self.fn.name}.{stmt.name}")
            if nested is not None:
                self.env[stmt.name] = nested
        elif hasattr(stmt, "body") and not isinstance(stmt, (ast.ClassDef,)):
            for child in getattr(stmt, "body", []):
                self._collect_nested(child)
            for child in getattr(stmt, "orelse", []):
                self._collect_nested(child)

    # -- traversal ----------------------------------------------------------

    def run(self) -> None:
        node = self.fn.node
        for stmt in node.body:
            self.visit(stmt)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested functions resolve themselves

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:
        self._resolve_call(node)
        self.generic_visit(node)

    # -- resolution ----------------------------------------------------------

    def _edge(self, callee: FunctionInfo, line: int, kind: str, ambiguous: bool = False) -> None:
        self.graph._add_edge(
            CallEdge(self.fn.qualname, callee.qualname, line, kind, ambiguous)
        )

    def _edge_to_class(self, cls: _ClassInfo, line: int, kind: str) -> None:
        ctor = self.program.constructor_of(cls)
        if ctor is not None:
            self._edge(ctor, line, kind)

    def _dynamic(self, node: ast.Call, description: str) -> None:
        annotated = node.lineno in self.mod.calls_lines
        self.graph.dynamic_calls.append(
            DynamicCall(
                function=self.fn.qualname,
                module=self.mod.key,
                line=node.lineno,
                description=description,
                annotated=annotated,
            )
        )

    def _resolve_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self._resolve_name_call(node, func.id)
        elif isinstance(func, ast.Attribute):
            self._resolve_attribute_call(node, func)
        elif isinstance(func, ast.Subscript):
            self._resolve_subscript_call(node, func.value)
        elif isinstance(func, ast.Call):
            inner = func.func
            if isinstance(inner, ast.Name) and inner.id == "getattr":
                self._dynamic(node, "call of a getattr(...) result")
            else:
                self._dynamic(node, "call of a call result")
        # Lambdas / comprehension results: nothing to resolve.

    def _resolve_name_call(self, node: ast.Call, name: str) -> None:
        if name == "cls" and self.fn.owner_class is not None:
            # Classmethod constructor idiom: cls(...) builds the own class
            # (a subclass at runtime, but the own __init__ is the sound
            # syntactic approximation).
            self._edge_to_class(
                self.mod.classes[self.fn.owner_class], node.lineno, "self"
            )
            return
        bound = self.env.get(name)
        if isinstance(bound, FunctionInfo):  # nested def
            self._edge(bound, node.lineno, "direct")
            return
        if bound is not None:
            self._resolve_value_call(node, name, bound)
            return
        kind, obj = self.program.resolve_dotted(self.mod, name)
        if kind == "function":
            self._edge(obj, node.lineno, "direct")
        elif kind == "class":
            self._edge_to_class(obj, node.lineno, "class")
        elif kind is None and name not in _BUILTINS:
            # An unknown bare name: almost always a builtin or re-export;
            # stay quiet rather than flooding DT202.
            pass

    def _resolve_value_call(self, node: ast.Call, name: str, bound: object) -> None:
        """A call of a local variable: interpret its last assignment."""
        if bound == "param":
            self._dynamic(node, f"call of parameter {name!r}")
            return
        if isinstance(bound, ast.Subscript):
            self._resolve_subscript_call(node, bound.value)
            return
        if isinstance(bound, (ast.Name, ast.Attribute)):
            # Aliasing: `push = heappush` / `step = self._advance` — resolve
            # the aliased reference as if called directly.
            ref = _ref_string(bound)
            if ref is not None and ref.startswith("self."):
                method = None
                if self.fn.owner_class is not None and ref.count(".") == 1:
                    method = self.program._class_method(
                        self.mod.classes[self.fn.owner_class], ref.split(".")[1]
                    )
                if method is not None:
                    self._edge(method, node.lineno, "self")
                else:
                    self._dynamic(node, f"call of dynamically bound local {name!r}")
                return
            if ref is not None:
                kind, obj = self.program.resolve_dotted(self.mod, ref)
                if kind == "function":
                    self._edge(obj, node.lineno, "direct")
                    return
                if kind == "class":
                    self._edge_to_class(obj, node.lineno, "class")
                    return
                if kind == "external":
                    return
            self._dynamic(node, f"call of dynamically bound local {name!r}")
            return
        if isinstance(bound, ast.Call):
            inner = bound.func
            if isinstance(inner, ast.Name) and inner.id == "getattr":
                self._dynamic(node, f"call of getattr-bound local {name!r}")
                return
        self._dynamic(node, f"call of dynamically bound local {name!r}")

    def _resolve_subscript_call(self, node: ast.Call, table_expr: ast.AST) -> None:
        targets = None
        if isinstance(table_expr, ast.Name):
            targets = self.mod.tables.get(table_expr.id)
            if targets is None and table_expr.id in self.mod.imports:
                kind, obj = self.program._resolve_absolute(self.mod.imports[table_expr.id])
                # "from repro.registry import SCHEDULER_REGISTRY": the name
                # resolves to nothing above (it is a table, not a function),
                # so look the table up in its defining module.
                dotted = self.mod.imports[table_expr.id]
                owner, _, tname = dotted.rpartition(".")
                owner_mod = self.program.by_dotted.get(owner)
                if owner_mod is not None:
                    targets = owner_mod.tables.get(tname)
        if not targets:
            self._dynamic(node, "call through an unresolved subscript")
            return
        owner_mod = self.mod if isinstance(table_expr, ast.Name) and table_expr.id in self.mod.tables else None
        if owner_mod is None:
            dotted = self.mod.imports[table_expr.id]
            owner_mod = self.program.by_dotted[dotted.rpartition(".")[0]]
        for ref in targets:
            kind, obj = self.program.resolve_dotted(owner_mod, ref)
            if kind == "function":
                self._edge(obj, node.lineno, "registry")
            elif kind == "class":
                self._edge_to_class(obj, node.lineno, "registry")

    def _resolve_attribute_call(self, node: ast.Call, func: ast.Attribute) -> None:
        base = func.value
        attr = func.attr
        if isinstance(base, ast.Name):
            if base.id == "self" and self.fn.owner_class is not None:
                cls = self.mod.classes[self.fn.owner_class]
                method = self.program._class_method(cls, attr)
                if method is not None:
                    self._edge(method, node.lineno, "self")
                else:
                    # self.<attr> with no such method: an instance attribute
                    # holding a callable -- genuinely dynamic dispatch.
                    self._dynamic(node, f"call of instance attribute self.{attr}")
                return
            bound = self.env.get(base.id)
            if isinstance(bound, ast.Call) and isinstance(bound.func, ast.Name):
                kind, obj = self.program.resolve_dotted(self.mod, bound.func.id)
                if kind == "class":
                    method = self.program._class_method(obj, attr)
                    if method is not None:
                        self._edge(method, node.lineno, "instance")
                        return
            if bound is None:
                kind, obj = self.program.resolve_dotted(self.mod, base.id)
                if kind == "class":
                    method = self.program._class_method(obj, attr)
                    if method is not None:
                        self._edge(method, node.lineno, "class")
                    return
                if kind == "module":
                    mkind, mobj = self.program.resolve_dotted(obj, attr)
                    if mkind == "function":
                        self._edge(mobj, node.lineno, "direct")
                    elif mkind == "class":
                        self._edge_to_class(mobj, node.lineno, "class")
                    return
                if kind == "external":
                    return
        self._cha(node, attr)

    def _cha(self, node: ast.Call, attr: str) -> None:
        candidates = self.program.methods_by_name.get(attr, [])
        if not candidates:
            return  # stdlib/external method (list.append, dict.items, ...)
        ambiguous = len(candidates) > 1
        for method in candidates:
            self._edge(method, node.lineno, "cha", ambiguous=ambiguous)


def _apply_calls_annotations(program: _Program, graph: CallGraph, mod: ModuleInfo) -> None:
    """Resolve ``# repro: calls[...]`` targets into explicit edges."""
    for line, targets in sorted(mod.calls_lines.items()):
        fn = graph.function_at(mod.key, line)
        if fn is None:
            continue
        resolved_any = False
        for target in targets:
            kind, obj = program.resolve_dotted(mod, target)
            if kind == "function":
                graph._add_edge(CallEdge(fn.qualname, obj.qualname, line, "annotation"))
                resolved_any = True
            elif kind == "class":
                ctor = program.constructor_of(obj)
                if ctor is not None:
                    graph._add_edge(
                        CallEdge(fn.qualname, ctor.qualname, line, "annotation")
                    )
                    resolved_any = True
        if not resolved_any:
            # Nothing matched: leave the line's dynamic calls unresolved so
            # a typo cannot silently disable DT202.
            for i, dyn in enumerate(graph.dynamic_calls):
                if dyn.module == mod.key and dyn.line == line and dyn.annotated:
                    graph.dynamic_calls[i] = DynamicCall(
                        dyn.function, dyn.module, dyn.line, dyn.description, annotated=False
                    )


def build_call_graph(sources: Mapping[str, Tuple[str, ast.AST]]) -> CallGraph:
    """Build the program graph from ``{module_key: (source, tree)}``."""
    graph = CallGraph()
    for key in sorted(sources):
        source, tree = sources[key]
        graph.modules[key] = _index_module(key, source, tree)
    program = _Program(graph.modules)
    for key in sorted(graph.modules):
        mod = graph.modules[key]
        for fn in mod.functions.values():
            graph.functions[fn.qualname] = fn
    for key in sorted(graph.modules):
        mod = graph.modules[key]
        for name in sorted(mod.functions):
            _FunctionResolver(program, graph, mod, mod.functions[name]).run()
        _apply_calls_annotations(program, graph, mod)
    return graph


def build_call_graph_from_paths(paths: Iterable["str"]) -> CallGraph:
    """Convenience wrapper: parse every ``*.py`` under ``paths`` and build."""
    from pathlib import Path

    from repro.analysis.engine import LintError, _iter_python_files

    sources: Dict[str, Tuple[str, ast.AST]] = {}
    for file_path in _iter_python_files([Path(p) for p in paths]):
        text = file_path.read_text()
        try:
            tree = ast.parse(text, filename=str(file_path))
        except SyntaxError as exc:
            raise LintError(f"{file_path}: cannot parse: {exc}") from exc
        sources[module_key(file_path)] = (text, tree)
    return build_call_graph(sources)
