"""Hot-path performance lint (DT401-DT405; DESIGN.md §14).

The repo's throughput story (24x periodic sim, ~120k events/sec on the
yahoo trace) rests on hand-applied micro-kernel idioms — pre-bound
aliases, allocation-free loops, no-op elision, null-object tracing —
that DT101-DT305 do not police: those passes guard *determinism* and
*complexity class*, not the constant factor.  A future edit can keep a
``# repro: budget O(1)`` function O(1) while quietly re-introducing a
per-event dict literal or an attribute chase, and only the throughput
bench notices, long after the diff.  This pass encodes the idioms as
rules, scoped exactly to the functions that matter: **hot functions** =
the PR 4/7 hot-path registry (:data:`repro.analysis.interproc.
HOT_PATH_REGISTRY`), ``@hot_path`` / ``# repro: hot-path`` markers, and
every function carrying a ``# repro: budget O(...)`` declaration.

Within a hot function the rules are *flow-aware* over two region kinds:
each ``for``/``while`` loop body (work repeated within one call) and the
whole function body (hot functions are themselves per-event/per-tick
iteration bodies — their callers' loops live elsewhere in the graph).

``DT401`` heap allocation in a hot loop
    A list/set/dict display, comprehension, or string build (f-string,
    ``%``/``+``/``.format`` on strings) inside a loop body of a hot
    function allocates per iteration.  Escape hatches: *bounded* loops
    (the iterable can only yield a compile-time-constant number of
    elements — a bounded-size accumulator costs O(1) total), constant
    tuples (CPython folds them), and allocations inside ``raise``/
    ``assert`` statements (the error path has already left the hot
    loop).
``DT402`` repeated attribute-chain loads that should be pre-bound locals
    The same ``a.b``/``a.b.c`` chain (including shared prefixes of
    longer chains) loaded N>=2 times *on one execution path* through a
    region, with no intervening store to the chain or any of its
    prefixes.  The codebase's own idiom: ``sim = self.sim`` /
    ``pop = heapq.heappop`` before the loop.  Counting is branch-aware:
    loads in the two arms of one ``if`` are mutually exclusive and take
    the max, sibling ``if`` statements sum, and an ``if`` body ending in
    ``return``/``raise``/``break``/``continue`` makes the statements
    after it the implicit else arm (the early-exit idiom).  A store to
    the chain or a prefix kills the chain for the whole region —
    rebinding makes pre-binding unsafe, so the rule stays silent rather
    than suggesting a wrong fix.
``DT403`` un-gated tracing/logging/contract calls in a hot region
    A call whose receiver chain names a tracer/logger/contract object
    must sit behind the existing null-object dispatch or a cached
    boolean gate (``if self.tracer.enabled:`` / ``if tracing:`` /
    ``if self._tracing:``).  Argument building for a disabled tracer is
    pure per-event overhead.
``DT404`` generator/iterator indirection under a strict budget
    ``yield``/``yield from``, a generator expression, or an
    ``itertools`` call inside a function whose declared budget is
    ``O(1)`` or ``O(log n)``: every ``next()`` through a generator
    frame costs a frame switch, and the §IV per-event bounds assume
    direct data-structure access (PR 7 removed exactly these from
    ``_advance_ct_heads``).
``DT405`` exception-as-control-flow around per-iteration work
    ``try/except KeyError|IndexError|AttributeError|StopIteration``
    inside a hot region where a lookup-with-default exists
    (``dict.get``, ``getattr(x, n, default)``, ``next(it, default)``).
    The raise path costs microseconds and hides the miss from the
    branch predictor; handlers for any other exception type are left
    alone (that is DT303's business).

Like DT2xx/DT3xx, raw violations route through the engine's inline
``# repro: allow[...]`` and baseline machinery, so a justified
exception documents itself next to the code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import BUDGET_GRAMMAR, CallGraph, FunctionInfo
from repro.analysis.rules import Violation

__all__ = ["PERF_RULES", "analyze_perf", "hot_functions"]

#: The rule ids this pass owns (registered in ``rules.RULES``).
PERF_RULES: Tuple[str, ...] = ("DT401", "DT402", "DT403", "DT404", "DT405")

#: Budgets strict enough that generator indirection breaks them (DT404).
_STRICT_BUDGETS = frozenset({"O(1)", "O(log n)"})

#: Receiver-chain segments that mark a call as tracing/logging/contract
#: work (DT403).  Terminal method names alone are not enough — ``incr``
#: or ``record`` on an arbitrary object is not tracing.
_TRACE_SEGMENTS = frozenset({
    "tracer", "trace", "logger", "logging", "log", "contracts", "monitor",
})

#: Identifier tokens (underscore-split words) that make an ``if`` test a
#: recognised gate for DT403 (cached boolean / enabled-flag idioms).
#: Token-exact so ``tracker`` does not read as a tracing gate.
_GATE_TOKENS = frozenset({
    "tracing", "tracer", "trace", "enabled", "debug", "verbose",
    "log", "logger", "logging", "contract", "contracts",
})

#: Exception types with a lookup-with-default replacement (DT405).
_DEFAULTABLE_EXCEPTIONS: Dict[str, str] = {
    "KeyError": "dict.get(key, default) / dict.setdefault",
    "IndexError": "a length check or slice",
    "AttributeError": "getattr(obj, name, default)",
    "StopIteration": "next(iterator, default)",
}

#: Call wrappers through which boundedness passes (mirrors interproc).
_BOUNDED_WRAPPERS = frozenset({"enumerate", "zip", "reversed", "sorted", "list", "tuple"})


def _bounded_iter(node: ast.AST) -> bool:
    """Can this iterable only yield a compile-time-constant number of
    elements?  (Same grammar as the DT203 scan-site exemption.)"""
    if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict, ast.Constant)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id == "range":
            return all(isinstance(arg, ast.Constant) for arg in node.args)
        if node.func.id in _BOUNDED_WRAPPERS:
            return bool(node.args) and all(_bounded_iter(arg) for arg in node.args)
    return False


def _load_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """An Attribute/Name chain as segment tuple, or None for anything
    rooted in a call/subscript result (not pre-bindable)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def hot_functions(graph: CallGraph) -> List[FunctionInfo]:
    """Every function this pass covers: hot-path-marked (decorator,
    comment, or the built-in registry — apply it first, see
    :func:`repro.analysis.interproc.apply_hot_registry`) or carrying a
    declared budget."""
    return [
        fn
        for _, fn in sorted(graph.functions.items())
        if fn.node is not None and (fn.hot_path or fn.budget is not None)
    ]


# -- regions -------------------------------------------------------------------


@dataclass
class _Region:
    """One analysis region: a loop body or the whole function body."""

    stmts: Sequence[ast.stmt]
    is_loop: bool
    line: int
    bounded: bool = False  # loop over a compile-time-bounded iterable


def _iter_regions(fn: FunctionInfo) -> Iterator[_Region]:
    yield _Region(fn.node.body, is_loop=False, line=fn.line)
    stack: List[ast.AST] = list(fn.node.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # nested defs are graph nodes of their own
        if isinstance(node, ast.For):
            yield _Region(
                node.body, is_loop=True, line=node.lineno,
                bounded=_bounded_iter(node.iter),
            )
        elif isinstance(node, ast.While):
            yield _Region(node.body, is_loop=True, line=node.lineno)
        stack.extend(ast.iter_child_nodes(node))


def _walk_region(stmts: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """All nodes of a region, skipping nested function/class scopes."""
    stack: List[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# -- DT401: allocation in hot loops --------------------------------------------


def _is_str_build(node: ast.AST) -> Optional[str]:
    """A per-iteration string construction, described, or None."""
    if isinstance(node, ast.JoinedStr):
        return "f-string"
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Add):
            for side in (node.left, node.right):
                if (isinstance(side, ast.Constant) and isinstance(side.value, str)) or isinstance(
                    side, ast.JoinedStr
                ):
                    return "string concatenation"
        if isinstance(node.op, ast.Mod):
            if isinstance(node.left, ast.Constant) and isinstance(node.left.value, str):
                return "%-formatting"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr == "format" and isinstance(node.func.value, ast.Constant) and isinstance(
            node.func.value.value, str
        ):
            return "str.format()"
    return None


def _alloc_description(node: ast.AST) -> Optional[str]:
    # Store/Del-context displays are unpack *targets* (`a, b = pair`),
    # not allocations.
    if isinstance(node, (ast.List, ast.Tuple)) and not isinstance(node.ctx, ast.Load):
        return None
    if isinstance(node, ast.List):
        return "list literal"
    if isinstance(node, ast.Dict):
        return "dict literal"
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.Tuple):
        # Constant tuples are folded by the compiler — genuinely free.
        if all(isinstance(elt, ast.Constant) for elt in node.elts):
            return None
        return "tuple literal"
    if isinstance(node, ast.ListComp):
        return "list comprehension"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.DictComp):
        return "dict comprehension"
    return _is_str_build(node)


def _error_path_spans(stmts: Sequence[ast.stmt]) -> List[Tuple[int, int]]:
    """(line, end_line) spans of ``raise``/``assert`` statements: their
    allocations happen after the hot loop is already being left."""
    spans: List[Tuple[int, int]] = []
    for node in _walk_region(stmts):
        if isinstance(node, (ast.Raise, ast.Assert)):
            spans.append((node.lineno, getattr(node, "end_lineno", node.lineno)))
    return spans


def _cold_spans(fn: FunctionInfo) -> List[Tuple[int, int]]:
    """(line, end_line) spans of trace-gated blocks: the block an
    ``if <gate>:`` selects when tracing/debugging is ON (the body, or the
    ``else`` branch of ``if not <gate>:``).  Work there is paid only on
    diagnostic runs, never by the production micro-kernel, so DT401 and
    DT402 stay silent inside them — the same bargain DT403 strikes.
    """
    spans: List[Tuple[int, int]] = []
    for node in _walk_region(fn.node.body):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        negated = isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)
        if not _gated(test.operand if negated else test):
            continue
        block = node.orelse if negated else node.body
        if block:
            spans.append((
                min(stmt.lineno for stmt in block),
                max(getattr(stmt, "end_lineno", stmt.lineno) for stmt in block),
            ))
    return spans


def _unpack_assign_tuples(stmts: Sequence[ast.stmt]) -> Set[int]:
    """ids of RHS tuple displays in ``a, b = x, y`` assignments: CPython
    compiles short unpack pairs to stack rotations, no tuple is built."""
    exempt: Set[int] = set()
    for node in _walk_region(stmts):
        if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Tuple)):
            continue
        if len(node.value.elts) > 3:
            continue
        for target in node.targets:
            if isinstance(target, ast.Tuple) and len(target.elts) == len(node.value.elts):
                exempt.add(id(node.value))
                break
    return exempt


def _dt401(
    fn: FunctionInfo, region: _Region, cold: Sequence[Tuple[int, int]]
) -> List[Violation]:
    if not region.is_loop or region.bounded:
        return []
    spans = _error_path_spans(region.stmts) + list(cold)
    exempt = _unpack_assign_tuples(region.stmts)
    violations: List[Violation] = []
    seen: Set[Tuple[int, str]] = set()
    for node in _walk_region(region.stmts):
        if id(node) in exempt:
            continue
        desc = _alloc_description(node)
        if desc is None:
            continue
        line = getattr(node, "lineno", region.line)
        if any(lo <= line <= hi for lo, hi in spans):
            continue
        if (line, desc) in seen:
            continue
        seen.add((line, desc))
        violations.append(
            Violation(
                rule="DT401",
                path=fn.module,
                line=line,
                col=getattr(node, "col_offset", 0),
                message=(
                    f"{desc} allocates per iteration of the hot loop at line "
                    f"{region.line} in {fn.name}; hoist it out of the loop or "
                    "reuse a preallocated object"
                ),
            )
        )
    return violations


# -- DT402: repeated attribute-chain loads -------------------------------------

#: A branch context: the ``(id(if_stmt), "body"|"else")`` decisions taken
#: to reach a node.  Two occurrences co-execute on one pass through the
#: region iff their contexts are consistent (neither takes the opposite
#: arm of an ``if`` the other takes).
_Branch = Tuple[Tuple[int, str], ...]


def _terminates(stmts: Sequence[ast.stmt]) -> bool:
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Break, ast.Continue)
    )


def _own_expr_nodes(stmt: ast.AST) -> Iterator[ast.AST]:
    """The expression nodes belonging to ``stmt`` itself — nested block
    statements are the recursive walker's business, lambda bodies are
    deferred work.  Parents are yielded before their children."""
    stack: List[ast.AST] = [
        child for child in ast.iter_child_nodes(stmt)
        if not isinstance(child, (ast.stmt, ast.excepthandler))
    ]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue
        yield node
        stack.extend(
            child for child in ast.iter_child_nodes(node)
            if not isinstance(child, ast.stmt)
        )


def _scan_stmt_chains(
    stmt: ast.AST,
    ctx: _Branch,
    sink: List[Tuple[Tuple[str, ...], int, _Branch]],
    consumed: Set[int],
) -> None:
    for node in _own_expr_nodes(stmt):
        if not isinstance(node, ast.Attribute) or id(node) in consumed:
            continue
        chain = _load_chain(node)
        if chain is None:
            continue
        # Only *maximal* Attribute nodes count — the inner Attribute of
        # `self.sim.now` is the same lookup, not a second one (parents
        # are yielded first, so the inner nodes are marked in time).
        inner = node.value
        while isinstance(inner, ast.Attribute):
            consumed.add(id(inner))
            inner = inner.value
        if not isinstance(node.ctx, ast.Load):
            continue
        sink.append((chain, node.lineno, ctx))


def _collect_chain_loads(
    stmts: Sequence[ast.stmt],
    ctx: _Branch,
    sink: List[Tuple[Tuple[str, ...], int, _Branch]],
    consumed: Set[int],
) -> None:
    """Record every >=1-step chain load with the branch context under
    which it executes.  An ``if`` body that ends in return/raise/break/
    continue makes the statements after the ``if`` the implicit else
    branch — the early-exit idiom the hot paths use everywhere."""
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(stmt, ast.If):
            _scan_stmt_chains(stmt, ctx, sink, consumed)  # the test
            key = id(stmt)
            _collect_chain_loads(stmt.body, ctx + ((key, "body"),), sink, consumed)
            _collect_chain_loads(stmt.orelse, ctx + ((key, "else"),), sink, consumed)
            if _terminates(stmt.body):
                ctx = ctx + ((key, "else"),)
            continue
        _scan_stmt_chains(stmt, ctx, sink, consumed)
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(stmt, attr, None)
            if block:
                _collect_chain_loads(block, ctx, sink, consumed)
        for handler in getattr(stmt, "handlers", []) or []:
            _scan_stmt_chains(handler, ctx, sink, consumed)
            _collect_chain_loads(handler.body, ctx, sink, consumed)


def _max_path_count(ctxs: Sequence[_Branch]) -> int:
    """The largest number of occurrences a single pass through the
    region can execute.  Contexts form a tree: unconditional occurrences
    always count, sibling ``if`` statements both execute (sum), and the
    arms of one ``if`` are exclusive (max)."""
    total = sum(1 for c in ctxs if not c)
    by_if: Dict[int, Dict[str, List[_Branch]]] = {}
    for c in ctxs:
        if c:
            by_if.setdefault(c[0][0], {}).setdefault(c[0][1], []).append(c[1:])
    for branches in by_if.values():
        total += max(_max_path_count(rest) for rest in branches.values())
    return total


def _dt402(
    fn: FunctionInfo,
    region: _Region,
    cold: Sequence[Tuple[int, int]] = (),
    seen_chains: Optional[Set[Tuple[str, ...]]] = None,
) -> List[Violation]:
    # First pass: every store target kills its chain and, transitively,
    # every extension of it (a rebound prefix invalidates pre-binding).
    killed_prefixes: Set[Tuple[str, ...]] = set()

    def kill(target: ast.AST) -> None:
        # `a.b[k] = v` rebinds neither `a` nor `a.b` — mutating through
        # a pre-bound alias is safe, and the chain itself is a *load*
        # (counted below).  `a.b = v` kills `a.b` and everything under it.
        if isinstance(target, ast.Subscript):
            return
        chain = _load_chain(target)
        if chain is not None:
            killed_prefixes.add(chain)

    for node in _walk_region(region.stmts):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                _kill_targets(target, kill)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            _kill_targets(node.target, kill)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                _kill_targets(target, kill)
        elif isinstance(node, (ast.For, ast.comprehension)):
            _kill_targets(node.target, kill)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            _kill_targets(node.optional_vars, kill)

    def is_killed(chain: Tuple[str, ...]) -> bool:
        return any(chain[: len(k)] == k for k in killed_prefixes) or any(
            k[: len(chain)] == chain for k in killed_prefixes
        )

    # Second pass: record every >=1-step chain load with its branch
    # context, then count each chain — including as a prefix of a longer
    # chain (`self.sim.now` is also a load of `self.sim`) — along the
    # single worst execution path.  Loads in the two arms of one ``if``
    # never co-execute, so they do not sum: pre-binding would not reduce
    # per-pass lookups there, and the rule must not demand it.
    raw: List[Tuple[Tuple[str, ...], int, _Branch]] = []
    _collect_chain_loads(region.stmts, (), raw, set())
    skip = list(cold) + _error_path_spans(region.stmts)
    counts: Dict[Tuple[str, ...], List[Tuple[int, _Branch]]] = {}
    for chain, line, ctx in raw:
        # Trace-gated blocks and raise/assert arguments are off the
        # production path.
        if any(lo <= line <= hi for lo, hi in skip):
            continue
        for cut in range(2, len(chain) + 1):
            counts.setdefault(chain[:cut], []).append((line, ctx))

    repeated: Dict[Tuple[str, ...], Tuple[int, List[int]]] = {}
    for chain, occurrences in counts.items():
        if is_killed(chain):
            continue
        count = _max_path_count([ctx for _, ctx in occurrences])
        if count >= 2:
            lines = sorted({line for line, _ in occurrences})
            repeated[chain] = (count, lines)

    # Maximal repeated chains only: if `self.sim.now` repeats, do not
    # also report its prefix `self.sim` (the one pre-bind fixes both).
    violations: List[Violation] = []
    for chain in sorted(repeated):
        count, lines = repeated[chain]
        if any(
            other != chain and other[: len(chain)] == chain
            and repeated[other][0] == count
            for other in repeated
        ):
            continue
        if seen_chains is not None:
            # One report per chain per function: the whole-body region is
            # analysed first, so loop regions only add chains the body's
            # kill set hid (a pre-loop store with in-loop re-reads).
            if chain in seen_chains:
                continue
            seen_chains.add(chain)
        dotted = ".".join(chain)
        where = "the hot loop" if region.is_loop else "hot function"
        violations.append(
            Violation(
                rule="DT402",
                path=fn.module,
                line=lines[0],
                col=0,
                message=(
                    f"`{dotted}` is loaded {count}x on one pass through "
                    f"{where} {fn.name} (lines {', '.join(map(str, lines))}); "
                    f"pre-bind it to a local"
                ),
            )
        )
    return violations


def _kill_targets(target: ast.AST, kill) -> None:
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _kill_targets(elt, kill)
    elif isinstance(target, ast.Starred):
        _kill_targets(target.value, kill)
    else:
        kill(target)


# -- DT403: un-gated tracing/logging/contract calls ----------------------------


def _is_trace_call(node: ast.Call) -> Optional[str]:
    chain = _load_chain(node.func)
    if chain is None or len(chain) < 2:
        return None
    # Receiver segments only: `self.tracer.record` -> ("self", "tracer").
    if any(seg.lstrip("_") in _TRACE_SEGMENTS for seg in chain[:-1]):
        return ".".join(chain)
    return None


def _gated(test: ast.AST) -> bool:
    """Is this ``if`` test a recognised cheap tracing gate?"""
    for node in ast.walk(test):
        ident: Optional[str] = None
        if isinstance(node, ast.Name):
            ident = node.id
        elif isinstance(node, ast.Attribute):
            ident = node.attr
        if ident is not None:
            tokens = ident.lower().strip("_").split("_")
            if any(token in _GATE_TOKENS for token in tokens):
                return True
    return False


def _scan_exprs_for_trace_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Trace-vocabulary calls in ``stmt``'s own expressions only — child
    *statements* (nested blocks) are the recursive walker's business, and
    lambda bodies are deferred work, not per-event work."""
    stack: List[ast.AST] = [
        child for child in ast.iter_child_nodes(stmt)
        if not isinstance(child, (ast.stmt, ast.excepthandler))
    ]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue
        if isinstance(node, ast.Call) and _is_trace_call(node) is not None:
            yield node
        stack.extend(
            child for child in ast.iter_child_nodes(node)
            if not isinstance(child, ast.stmt)
        )


def _dt403(fn: FunctionInfo) -> List[Violation]:
    violations: List[Violation] = []

    def emit(node: ast.Call) -> None:
        violations.append(
            Violation(
                rule="DT403",
                path=fn.module,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"un-gated tracing/contract call "
                    f"`{_is_trace_call(node)}(...)` in hot function "
                    f"{fn.name}; guard it with the null-object or a "
                    "cached enabled-boolean (`if self.tracer.enabled:`)"
                ),
            )
        )

    def walk(stmts: Sequence[ast.stmt], gated: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If):
                test = stmt.test
                negated = isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)
                if _gated(test.operand if negated else test):
                    # `if <gate>:` gates its body; `if not <gate>:` gates
                    # its else branch (the body is the untraced path).
                    walk(stmt.body, gated or not negated)
                    walk(stmt.orelse, gated or negated)
                    continue
            if not gated:
                for call in _scan_exprs_for_trace_calls(stmt):
                    emit(call)
            for attr in ("body", "orelse", "finalbody"):
                block = getattr(stmt, attr, None)
                if block:
                    walk(block, gated)
            for handler in getattr(stmt, "handlers", []) or []:
                walk(handler.body, gated)

    walk(list(fn.node.body), False)
    return violations


# -- DT404: generator indirection under strict budgets -------------------------


def _dt404(fn: FunctionInfo) -> List[Violation]:
    if fn.budget not in _STRICT_BUDGETS:
        return []
    violations: List[Violation] = []
    for node in _walk_region(fn.node.body):
        desc: Optional[str] = None
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            desc = "yield makes this a generator function"
        elif isinstance(node, ast.GeneratorExp):
            desc = "generator expression"
        elif isinstance(node, ast.Call):
            chain = _load_chain(node.func)
            if chain is not None and chain[0] == "itertools":
                desc = f"itertools.{chain[-1]}() chain"
        if desc is None:
            continue
        violations.append(
            Violation(
                rule="DT404",
                path=fn.module,
                line=getattr(node, "lineno", fn.line),
                col=getattr(node, "col_offset", 0),
                message=(
                    f"{desc} in {fn.name} (declared {fn.budget}); each "
                    "next() pays a frame switch — walk the structure "
                    "directly"
                ),
            )
        )
    return violations


# -- DT405: exception-as-control-flow ------------------------------------------


def _dt405(fn: FunctionInfo, region: _Region) -> List[Violation]:
    violations: List[Violation] = []
    for node in _walk_region(region.stmts):
        if not isinstance(node, ast.Try):
            continue
        names: List[str] = []
        for handler in node.handlers:
            types = (
                handler.type.elts
                if isinstance(handler.type, ast.Tuple)
                else [handler.type]
            )
            for htype in types:
                ident = None
                if isinstance(htype, ast.Name):
                    ident = htype.id
                elif isinstance(htype, ast.Attribute):
                    ident = htype.attr
                if ident not in _DEFAULTABLE_EXCEPTIONS:
                    names = []
                    break
                names.append(ident)
            else:
                continue
            break
        if not names:
            continue
        hints = "; ".join(
            dict.fromkeys(_DEFAULTABLE_EXCEPTIONS[name] for name in names)
        )
        where = (
            f"the hot loop at line {region.line}" if region.is_loop
            else f"hot function {fn.name}"
        )
        violations.append(
            Violation(
                rule="DT405",
                path=fn.module,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"try/except {'/'.join(names)} used as control flow in "
                    f"{where}; use a lookup with a default ({hints})"
                ),
            )
        )
    return violations


# -- the pass ------------------------------------------------------------------


def analyze_perf(graph: CallGraph) -> List[Violation]:
    """Run DT401-DT405 over every hot function of a built call graph.

    Callers must apply the built-in hot-path registry first
    (:func:`repro.analysis.interproc.apply_hot_registry`) so registry
    functions without an inline marker are covered; the engine does this
    once per ``--interproc`` run.
    """
    violations: List[Violation] = []
    for fn in hot_functions(graph):
        cold = _cold_spans(fn)
        loop_seen: Set[int] = set()
        seen_chains: Set[Tuple[str, ...]] = set()
        for region in _iter_regions(fn):
            if region.is_loop:
                if region.line in loop_seen:
                    continue
                loop_seen.add(region.line)
                violations.extend(_dt401(fn, region, cold))
                violations.extend(_dt405(fn, region))
            violations.extend(_dt402(fn, region, cold, seen_chains))
        violations.extend(_dt403(fn))
        violations.extend(_dt404(fn))
        if fn.budget in _STRICT_BUDGETS:
            # A strict-budget function *is* a per-event iteration body:
            # its try/except control flow repeats per event even without
            # a visible loop.
            violations.extend(_dt405(fn, _Region(fn.node.body, False, fn.line)))
    # DT402 dedups per chain above; the rest dedup per line — a Try inside
    # a loop of a strict-budget function is seen by both the loop region
    # and the whole-body region, and an allocation in a nested loop by
    # both loops.  First report (the tighter location) wins.
    deduped: Dict[Tuple[str, str, int, str], Violation] = {}
    for violation in violations:
        marker = violation.message if violation.rule == "DT402" else ""
        deduped.setdefault(
            (violation.rule, violation.path, violation.line, marker), violation
        )
    return sorted(deduped.values(), key=lambda v: (v.path, v.line, v.rule, v.message))
