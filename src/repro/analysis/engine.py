"""The lint driver: file walking, suppressions, baseline accounting.

Three layers of noise control, in precedence order:

1. **Inline suppressions** — ``# repro: allow[DT101]`` (comma-separated ids
   or ``*``) on the flagged line marks a *justified* exception; the code
   next to the comment is the justification's audience.
2. **Baseline file** — one ``module-path:RULE:count`` entry per line grants
   a file a budget of known violations, so the gate can be introduced over
   a tree that is not yet clean without hiding *new* violations.  Entries
   that no longer match anything are reported as stale so the baseline
   only ever shrinks.
3. **Scope directives** — ``# repro: decision-path`` anywhere in a file
   opts it into the decision-path rule set regardless of location (used by
   rule fixtures and by modules that migrate between packages).

``lint_paths`` is the single entry point the CLI, the tier-1 gate test and
the perf bench all share.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.rules import DECISION_PATH_DIRS, RULES, Violation, scan_module

__all__ = [
    "LintError",
    "LintReport",
    "inline_allows",
    "is_decision_path_module",
    "lint_source",
    "lint_paths",
    "module_key",
    "load_baseline",
    "randomness_allowed_module",
]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9*,\s]+)\]")
_DECISION_DIRECTIVE_RE = re.compile(r"#\s*repro:\s*decision-path\b")
_RANDOMNESS_OK_DIRECTIVE_RE = re.compile(r"#\s*repro:\s*randomness-ok\b")
_BASELINE_LINE_RE = re.compile(r"^(?P<path>[^:#]+):(?P<rule>[A-Z0-9]+):(?P<count>\d+)$")


class LintError(ValueError):
    """Raised on unreadable/unparsable inputs or a malformed baseline."""


@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    #: Violations neither suppressed inline nor covered by the baseline.
    violations: List[Violation] = field(default_factory=list)
    #: Violations silenced by an inline ``# repro: allow[...]`` comment.
    suppressed: List[Violation] = field(default_factory=list)
    #: Violations absorbed by the baseline budget.
    baselined: List[Violation] = field(default_factory=list)
    #: Baseline entries (path, rule, leftover count) that matched nothing.
    stale_baseline: List[Tuple[str, str, int]] = field(default_factory=list)
    files_checked: int = 0
    #: Incremental runs only: how many module summaries were computed
    #: fresh (0 = the whole report replayed from cache).  ``None`` for
    #: non-incremental runs.
    summaries_recomputed: Optional[int] = None

    @property
    def clean(self) -> bool:
        return not self.violations

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts

    def render(self, verbose: bool = False) -> str:
        """Human-readable report (one violation per line, summary last)."""
        lines = [v.render() for v in self.violations]
        if verbose:
            lines.extend(f"{v.render()} [suppressed]" for v in self.suppressed)
            lines.extend(f"{v.render()} [baseline]" for v in self.baselined)
        for path, rule, count in self.stale_baseline:
            lines.append(f"{path}: stale baseline entry {rule} x{count} (no longer matches)")
        summary = (
            f"{len(self.violations)} violation(s), {len(self.suppressed)} suppressed, "
            f"{len(self.baselined)} baselined, {self.files_checked} file(s) checked"
        )
        if self.summaries_recomputed is not None:
            summary += f", {self.summaries_recomputed} summarie(s) recomputed"
        lines.append(summary)
        return "\n".join(lines)

    def to_json_payload(self, verbose: bool = False) -> Dict[str, object]:
        """Stable machine-readable view (``lint --format json``).

        Records are sorted by (module, line, rule, message) and carry only
        plain scalars, so ``json.dumps(..., sort_keys=True)`` of this
        payload is byte-stable for a given tree state.  ``verbose`` adds
        the suppressed/baselined record lists; their counts are always
        present.
        """
        def records(violations: List[Violation]) -> List[Dict[str, object]]:
            return [
                {
                    "module": v.path,
                    "rule": v.rule,
                    "line": v.line,
                    "col": v.col,
                    "message": v.message,
                }
                for v in sorted(
                    violations, key=lambda v: (v.path, v.line, v.rule, v.message)
                )
            ]

        payload: Dict[str, object] = {
            "clean": self.clean,
            "files_checked": self.files_checked,
            "violations": records(self.violations),
            "suppressed_count": len(self.suppressed),
            "baselined_count": len(self.baselined),
            "stale_baseline": [
                {"module": path, "rule": rule, "count": count}
                for path, rule, count in self.stale_baseline
            ],
        }
        if self.summaries_recomputed is not None:
            payload["summaries_recomputed"] = self.summaries_recomputed
        if verbose:
            payload["suppressed"] = records(self.suppressed)
            payload["baselined"] = records(self.baselined)
        return payload


def module_key(path: "str | Path") -> str:
    """Stable identifier for a file: the path from the ``repro`` package
    root when below one, else the bare file name.

    Baseline entries and reports use this key, so the baseline is
    independent of where the tree is checked out — including the path
    separator: Windows backslashes are normalised to POSIX ``/`` before
    splitting, so ``src\\repro\\core\\x.py`` and ``src/repro/core/x.py``
    produce the same key.
    """
    parts = str(path).replace("\\", "/").split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return parts[-1]


def is_decision_path_module(key: str, source: str) -> bool:
    """Does this module take scheduling decisions (by location or directive)?"""
    if _DECISION_DIRECTIVE_RE.search(source):
        return True
    parts = key.split("/")
    return len(parts) > 1 and parts[0] == "repro" and parts[1] in DECISION_PATH_DIRS


def randomness_allowed_module(key: str, source: str) -> bool:
    """Is this module sanctioned to draw randomness (noise/workloads)?"""
    if _RANDOMNESS_OK_DIRECTIVE_RE.search(source):
        return True
    rel = key[len("repro/"):] if key.startswith("repro/") else key
    return rel == "noise.py" or rel.startswith("workloads/")


# Internal aliases kept for callers predating the public names.
_is_decision_path = is_decision_path_module
_randomness_allowed = randomness_allowed_module


def inline_allows(source: str) -> Dict[int, set]:
    """Line number -> set of rule ids allowed there (``*`` = every rule)."""
    allows: Dict[int, set] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            rules = {token.strip() for token in match.group(1).split(",") if token.strip()}
            allows[lineno] = rules
    return allows


_inline_allows = inline_allows


def _filter_violations(
    raw: Sequence[Violation],
    key: str,
    allows: Dict[int, set],
    baseline: Optional[Dict[Tuple[str, str], int]],
    report: LintReport,
) -> None:
    """Route raw violations through inline allows then baseline budgets."""
    for violation in raw:
        allowed = allows.get(violation.line, ())
        if violation.rule in allowed or "*" in allowed:
            report.suppressed.append(violation)
            continue
        if baseline is not None:
            budget = baseline.get((key, violation.rule), 0)
            if budget > 0:
                baseline[(key, violation.rule)] = budget - 1
                report.baselined.append(violation)
                continue
        report.violations.append(violation)


def lint_source(
    source: str,
    path: "str | Path",
    baseline: Optional[Dict[Tuple[str, str], int]] = None,
    report: Optional[LintReport] = None,
    tree: Optional[ast.AST] = None,
) -> LintReport:
    """Lint one module's source text into (or onto) a report.

    ``baseline`` maps ``(module_key, rule)`` to a remaining-budget count;
    matched violations decrement it in place so one baseline dict can be
    shared across the files of a run.  ``tree`` lets callers that already
    parsed the module skip the second parse.
    """
    if report is None:
        report = LintReport()
    key = module_key(path)
    if tree is None:
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise LintError(f"{path}: cannot parse: {exc}") from exc
    raw = scan_module(
        tree,
        path=key,
        decision_path=_is_decision_path(key, source),
        randomness_allowed=_randomness_allowed(key, source),
    )
    _filter_violations(raw, key, inline_allows(source), baseline, report)
    report.files_checked += 1
    return report


def load_baseline(path: "str | Path") -> Dict[Tuple[str, str], int]:
    """Parse a baseline file into a ``(module_key, rule) -> count`` budget.

    Blank lines and ``#`` comments are ignored.  Unknown rule ids and
    malformed lines raise :class:`LintError` — a baseline that silently
    grants nothing is worse than a crash.
    """
    budget: Dict[Tuple[str, str], int] = {}
    text = Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _BASELINE_LINE_RE.match(stripped)
        if match is None:
            raise LintError(f"{path}:{lineno}: malformed baseline entry {stripped!r}")
        rule = match.group("rule")
        if rule not in RULES:
            raise LintError(f"{path}:{lineno}: unknown rule id {rule!r}")
        key = (match.group("path"), rule)
        budget[key] = budget.get(key, 0) + int(match.group("count"))
    return budget


def _iter_python_files(paths: Iterable["str | Path"]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise LintError(f"{path}: not a python file or directory")
    if not files:
        raise LintError("no python files found under the given paths")
    return files


def _report_to_payload(report: LintReport) -> Dict[str, object]:
    """Serialize a full report for the program-level cache (in original
    order — replay must render byte-identically)."""
    from repro.analysis.cache import violation_to_record

    return {
        "violations": [violation_to_record(v) for v in report.violations],
        "suppressed": [violation_to_record(v) for v in report.suppressed],
        "baselined": [violation_to_record(v) for v in report.baselined],
        "stale_baseline": [
            [path, rule, count] for path, rule, count in report.stale_baseline
        ],
        "files_checked": report.files_checked,
    }


def _report_from_payload(payload: Dict[str, object]) -> Optional[LintReport]:
    """Rebuild a cached report; None (a cache miss) on any malformation."""
    from repro.analysis.cache import violation_from_record

    try:
        return LintReport(
            violations=[violation_from_record(r) for r in payload["violations"]],
            suppressed=[violation_from_record(r) for r in payload["suppressed"]],
            baselined=[violation_from_record(r) for r in payload["baselined"]],
            stale_baseline=[
                (str(path), str(rule), int(count))
                for path, rule, count in payload["stale_baseline"]
            ],
            files_checked=int(payload["files_checked"]),
        )
    except (KeyError, TypeError, ValueError):
        return None


def lint_paths(
    paths: Sequence["str | Path"],
    baseline_path: Optional["str | Path"] = None,
    *,
    interproc: bool = False,
    only_keys: Optional[Iterable[str]] = None,
    incremental: bool = False,
    cache_dir: Optional["str | Path"] = None,
) -> LintReport:
    """Lint every ``*.py`` under ``paths`` (files or directories).

    Files are visited in sorted order so reports are reproducible — the
    lint suite holds itself to its own determinism rules.

    ``interproc=True`` additionally builds the whole-program call graph
    and runs the DT201-DT204 pass (:mod:`repro.analysis.interproc`); its
    violations go through the same inline-allow and baseline machinery,
    attributed to the module each one is located in.

    ``only_keys`` restricts *reporting* to the given module keys (the
    ``--diff`` fast path): every file is still parsed — the call graph
    needs the whole program — but intraprocedural scanning, violation
    output and ``files_checked`` cover only the selected modules, and
    stale-baseline accounting is skipped because a partial run cannot
    distinguish a stale entry from an unvisited one.

    ``incremental=True`` consults the content-hashed summary cache
    (:mod:`repro.analysis.cache`, default ``.repro-lint-cache/``, or
    ``cache_dir``): a byte-identical tree replays the previous report
    without parsing anything, and a partially-changed tree re-summarizes
    only the changed modules (:attr:`LintReport.summaries_recomputed`
    counts them).  Results are identical to a cold run by construction —
    entries are keyed by rule-set, source, and directive-ledger content.
    Ignored under ``only_keys``: a partial report is not a tree state
    worth caching.
    """
    baseline = load_baseline(baseline_path) if baseline_path is not None else None
    report = LintReport()
    selected = None if only_keys is None else set(only_keys)
    ordered: List[Tuple[Path, str, str]] = [
        (file_path, module_key(file_path), file_path.read_text())
        for file_path in _iter_python_files(paths)
    ]
    use_cache = incremental and selected is None
    cache = None
    fingerprints: Dict[str, str] = {}
    program_key: Optional[str] = None
    if use_cache:
        from repro.analysis.cache import (
            DEFAULT_CACHE_DIR,
            LintCache,
            module_fingerprint,
            program_digest,
        )
        from repro.analysis.dataflow import directive_comments

        cache = LintCache(DEFAULT_CACHE_DIR if cache_dir is None else cache_dir)
        fingerprints = {
            key: module_fingerprint(key, source, directive_comments(source))
            for _, key, source in ordered
        }
        baseline_text = (
            Path(baseline_path).read_text() if baseline_path is not None else ""
        )
        program_key = program_digest(fingerprints, baseline_text, interproc)
        cached = cache.load_program(program_key)
        if cached is not None:
            replayed = _report_from_payload(cached)
            if replayed is not None:
                replayed.summaries_recomputed = 0
                return replayed
        report.summaries_recomputed = 0
    parsed: Dict[str, Tuple[str, ast.AST]] = {}
    for file_path, key, source in ordered:
        if interproc:
            try:
                parsed[key] = (source, ast.parse(source, filename=str(file_path)))
            except SyntaxError as exc:
                raise LintError(f"{file_path}: cannot parse: {exc}") from exc
        if selected is not None and key not in selected:
            continue
        raw: Optional[Sequence[Violation]] = None
        if use_cache:
            raw = cache.load_summary(fingerprints[key])
        if raw is None:
            if key in parsed:
                tree = parsed[key][1]
            else:
                try:
                    tree = ast.parse(source, filename=str(file_path))
                except SyntaxError as exc:
                    raise LintError(f"{file_path}: cannot parse: {exc}") from exc
            raw = scan_module(
                tree,
                path=key,
                decision_path=_is_decision_path(key, source),
                randomness_allowed=_randomness_allowed(key, source),
            )
            if use_cache:
                cache.store_summary(fingerprints[key], key, raw)
                report.summaries_recomputed += 1
        _filter_violations(raw, key, inline_allows(source), baseline, report)
        report.files_checked += 1
    if interproc:
        from repro.analysis.callgraph import build_call_graph
        from repro.analysis.dataflow import (
            analyze_dataflow,
            stale_suppression_violations,
        )
        from repro.analysis.interproc import (
            analyze_graph,
            apply_hot_registry,
            seed_allow_uses,
        )
        from repro.analysis.perflint import analyze_perf

        graph = build_call_graph(parsed)
        apply_hot_registry(graph)
        by_module: Dict[str, List[Violation]] = {}
        for violation in analyze_graph(graph) + analyze_dataflow(graph) + analyze_perf(graph):
            by_module.setdefault(violation.path, []).append(violation)
        for key in sorted(by_module):
            if selected is not None and key not in selected:
                continue
            source = parsed[key][0]
            _filter_violations(
                by_module[key], key, inline_allows(source), baseline, report
            )
        # DT304 runs last: it needs the final suppression ledger (every
        # allow that earned its keep above) plus the allows consumed by
        # the taint-seed filter.  Skipped under --diff: a partial run
        # cannot tell a stale allow from one whose rule was not re-run.
        if selected is None:
            used: Dict[str, set] = {}
            for violation in report.suppressed:
                used.setdefault(violation.path, set()).add(
                    (violation.line, violation.rule)
                )
            for key, mod in graph.modules.items():
                used.setdefault(key, set()).update(seed_allow_uses(mod))
            stale: Dict[str, List[Violation]] = {}
            for violation in stale_suppression_violations(graph, used):
                stale.setdefault(violation.path, []).append(violation)
            for key in sorted(stale):
                source = parsed[key][0]
                _filter_violations(
                    stale[key], key, inline_allows(source), baseline, report
                )
    if baseline and selected is None:
        report.stale_baseline = sorted(
            (key, rule, count) for (key, rule), count in baseline.items() if count > 0
        )
    if use_cache and program_key is not None:
        cache.store_program(program_key, _report_to_payload(report))
    return report
