"""Flow-sensitive interprocedural dataflow pass (DT301-DT305; DESIGN.md §13).

The DT2xx pass answers *reachability* questions (does nondeterminism reach
a decision path, does a budgeted chain hide a scan).  The hazards the fork
pool (DESIGN.md §11) and the planned multi-tenant planning service expose
are *state* questions: which module/class-level objects does a call chain
write, which operations can raise partway through a mutation sequence,
which callables actually cross a pickling boundary.  This module computes
per-function **summaries** over the :mod:`repro.analysis.callgraph` graph
and propagates them to a fixpoint:

* ``global_writes`` — writes to module-level or class-level *mutable*
  bindings (dict/list/set/OrderedDict/... literals and constructors),
  whether by rebinding through ``global``, subscript store/delete, a known
  mutator method (``append``/``update``/``setdefault``/...), or
  ``cls.attr`` / ``ClassName.attr`` assignment.  Imported names resolve to
  their defining module, so ``other.TABLE[k] = v`` is charged to ``other``.
* ``raises`` / ``may_raise`` — exception names from explicit ``raise``
  statements, closed over precise call edges by a caller-ward worklist.
* ``wallclock_return`` — does the function return a value derived from a
  wall-clock/OS-entropy source?  Computed by the same flow pass that
  checks DT305 sinks, iterated to a fixpoint because helpers returning
  ``time.perf_counter()`` taint their callers' locals.

The rules on top:

``DT301`` fork-shared mutable state
    A function reachable (over precise edges) from a declared entry point
    (``# repro: entrypoint[fork|service]`` or ``@entrypoint(...)``,
    :mod:`repro.analysis.annotations`) writes module/class-level mutable
    state.  In a forked worker the write mutates a silently diverging copy;
    in a service it races other tenants.  The documented safe pattern is
    per-shard regeneration — workers rebuild state from the cell key
    instead of sharing it (DESIGN.md §11).
``DT302`` unpicklable callable crossing the Pool boundary
    A ``pool.map``/``apply_async``/... call whose function argument is a
    lambda, a closure (nested ``def`` — its captured cells are listed), or
    a bound method.  Module-level functions — including a conditional
    rebinding between two of them — pass.
``DT303`` exception atomicity
    In a decision-path/hot-path function, two mutations of the same
    receiver in one statement block with a may-raise operation strictly
    between them: an exception there leaves contract-protected structures
    (``DoubleSkipList``, ``_WorkflowRecord``, WIP bookkeeping, cache
    counters) half-updated.  Also: a broad ``except Exception:`` /bare
    ``except:`` without a re-raise in such a function, which can swallow
    ``ContractError`` and convert an invariant violation into silent state
    corruption.
``DT304`` stale suppressions
    An ``allow[...]`` id that suppressed nothing this run (checked against
    the engine's suppression ledger *and* the taint-seed allows of
    :func:`repro.analysis.interproc.seed_allow_uses`), a ``calls[...]``
    on a line with no dynamic call left, or a ``budget`` comment attached
    to no ``def``.  Directives are read from real ``tokenize`` COMMENT
    tokens, never from string literals, so docstrings that *mention*
    directives (like this one) cannot go stale.
``DT305`` simulated-time purity
    A wall-clock-derived value (flow-sensitively tracked through local
    assignments, with kill on clean reassignment, and interprocedurally
    through ``wallclock_return`` summaries) compared with or added to a
    simulated-clock expression (``now``/``clock``/``sim_time``/deadline-
    like identifiers).  Wall-vs-wall arithmetic (bench timing) is fine;
    wall-vs-sim is how Algorithm 1's determinism dies.
"""

from __future__ import annotations

import ast
import io
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    CallEdge,
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    _BUDGET_RE,
    _CALLS_RE,
    _ENTRYPOINT_RE,
    _ref_string,
)
from repro.analysis.engine import _ALLOW_RE
from repro.analysis.rules import Violation, _WALLCLOCK_CALLS

__all__ = [
    "DATAFLOW_RULES",
    "FunctionSummary",
    "GlobalWrite",
    "analyze_dataflow",
    "compute_summaries",
    "directive_comments",
    "stale_suppression_violations",
]

#: The rule ids this pass owns (registered in ``rules.RULES``).
DATAFLOW_RULES: Tuple[str, ...] = ("DT301", "DT302", "DT303", "DT304", "DT305")

#: Constructors whose results are mutable containers.
_MUTABLE_CONSTRUCTORS = {
    "dict", "list", "set", "bytearray",
    "OrderedDict", "defaultdict", "Counter", "deque",
}

#: Methods that mutate their receiver in place (containers + structures).
_MUTATOR_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "add",
    "discard", "update", "setdefault", "popitem", "move_to_end",
    "appendleft", "popleft", "sort", "reverse",
}

#: Structural mutators of the contract-protected §IV structures; together
#: with attribute/subscript stores these are the DT303 "paired mutation"
#: vocabulary.
_CONTRACT_MUTATORS = _MUTATOR_METHODS | {
    "delete", "pop_head", "update_head_ct", "update_priority", "update_ct",
}

#: Pool methods that ship their function argument across a fork boundary.
_POOL_METHODS = {
    "map", "map_async", "imap", "imap_unordered",
    "starmap", "starmap_async", "apply", "apply_async",
}

#: Call wrappers through which wall-clock taint passes unchanged.
_TAINT_WRAPPERS = {"float", "int", "abs", "round", "min", "max"}

#: Identifiers (terminal attribute/name segments) that denote the
#: simulated clock or quantities measured on it.
_SIMCLOCK_IDENTS = {
    "now", "clock", "sim_time", "sim_now", "current_time",
    "submit_time", "completion_time",
}


def _is_wallclock_ref(mod: ModuleInfo, func: ast.AST) -> bool:
    """Is this call target a wall-clock/OS-entropy source?

    Resolves the head of the reference through the module's import table
    so both ``time.perf_counter()`` and a ``from time import perf_counter``
    call match the ``_WALLCLOCK_CALLS`` pairs.
    """
    ref = _ref_string(func)
    if ref is None:
        return False
    head, _, rest = ref.partition(".")
    dotted = mod.imports.get(head)
    if dotted is not None:
        ref = f"{dotted}.{rest}" if rest else dotted
    parts = ref.split(".")
    if len(parts) < 2:
        return False
    return (parts[-2], parts[-1]) in _WALLCLOCK_CALLS


def _is_simclockish(node: ast.AST) -> bool:
    """Does this expression name a simulated-time quantity?"""
    ident: Optional[str] = None
    if isinstance(node, ast.Name):
        ident = node.id
    elif isinstance(node, ast.Attribute):
        ident = node.attr
    if ident is None:
        return False
    bare = ident.lower().lstrip("_")
    return bare in _SIMCLOCK_IDENTS or bare.endswith("deadline")


@dataclass(frozen=True)
class GlobalWrite:
    """One write of module/class-level mutable state inside a function."""

    target: str  # display name, e.g. "repro/registry.py::SCHEDULER_REGISTRY"
    line: int
    kind: str  # "rebind" | "subscript" | "delete" | "method" | "class-attr"


@dataclass
class FunctionSummary:
    """What one function does to shared state and control flow."""

    qualname: str
    global_writes: List[GlobalWrite] = field(default_factory=list)
    raises: Set[str] = field(default_factory=set)  # own explicit raises
    may_raise: Set[str] = field(default_factory=set)  # after propagation
    wallclock_return: bool = False


# -- module-level mutable state index -----------------------------------------


def _mutable_value(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        ref = _ref_string(node.func)
        if ref is not None and ref.split(".")[-1] in _MUTABLE_CONSTRUCTORS:
            return True
    return False


def _module_mutable_names(mod: ModuleInfo) -> Set[str]:
    """Module-level names bound to mutable containers."""
    names: Set[str] = set()
    for stmt in mod.tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _mutable_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _class_mutable_attrs(mod: ModuleInfo) -> Dict[str, Set[str]]:
    """Class name -> class-level attributes bound to mutable containers."""
    attrs: Dict[str, Set[str]] = {}
    for stmt in mod.tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        found: Set[str] = set()
        for sub in stmt.body:
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(sub, ast.Assign):
                targets, value = list(sub.targets), sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                targets, value = [sub.target], sub.value
            if value is None or not _mutable_value(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    found.add(target.id)
        if found:
            attrs[stmt.name] = found
    return attrs


@dataclass
class _StateIndex:
    """Program-wide view of where mutable module/class state lives."""

    module_names: Dict[str, Set[str]]  # module key -> mutable global names
    class_attrs: Dict[str, Dict[str, Set[str]]]  # module key -> class -> attrs

    @classmethod
    def build(cls, graph: CallGraph) -> "_StateIndex":
        return cls(
            module_names={
                key: _module_mutable_names(mod)
                for key, mod in graph.modules.items()
            },
            class_attrs={
                key: _class_mutable_attrs(mod)
                for key, mod in graph.modules.items()
            },
        )

    def resolve_global(self, mod: ModuleInfo, name: str) -> Optional[str]:
        """``name`` used in ``mod``: the display key of the module-level
        mutable binding it denotes, or None."""
        if name in self.module_names.get(mod.key, ()):
            return f"{mod.key}::{name}"
        dotted = mod.imports.get(name)
        if dotted is not None:
            owner, _, leaf = dotted.rpartition(".")
            for key, names in self.module_names.items():
                mod_dotted = _module_dotted(key)
                if mod_dotted == owner and leaf in names:
                    return f"{key}::{leaf}"
        return None

    def resolve_module_attr(self, mod: ModuleInfo, base: str, attr: str) -> Optional[str]:
        """``base.attr`` where ``base`` is an imported module object."""
        dotted = mod.imports.get(base)
        if dotted is None:
            return None
        for key, names in self.module_names.items():
            if _module_dotted(key) == dotted and attr in names:
                return f"{key}::{attr}"
        return None


def _module_dotted(key: str) -> str:
    trimmed = key[:-3] if key.endswith(".py") else key
    if trimmed.endswith("/__init__"):
        trimmed = trimmed[: -len("/__init__")]
    return trimmed.replace("/", ".")


# -- per-function summary extraction ------------------------------------------


def _local_names(node: ast.AST) -> Set[str]:
    """Names bound locally inside a function (params + assignments +
    loop/with targets + nested defs), which shadow module globals."""
    names: Set[str] = set()
    args = node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        names.add(arg.arg)
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            names.add(extra.arg)

    def collect_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                collect_target(elt)
        elif isinstance(target, ast.Starred):
            collect_target(target.value)

    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                collect_target(target)
        elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
            collect_target(sub.target)
        elif isinstance(sub, ast.For):
            collect_target(sub.target)
        elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
            collect_target(sub.optional_vars)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not node:
            names.add(sub.name)
    return names


def _exception_name(exc: Optional[ast.AST]) -> Optional[str]:
    if exc is None:
        return None  # bare re-raise: charged to the original raiser
    target = exc.func if isinstance(exc, ast.Call) else exc
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return None


class _SummaryVisitor(ast.NodeVisitor):
    """Collect global writes and explicit raises for one function body."""

    def __init__(self, mod: ModuleInfo, fn: FunctionInfo, state: _StateIndex) -> None:
        self.mod = mod
        self.fn = fn
        self.state = state
        self.summary = FunctionSummary(qualname=fn.qualname)
        self.locals = _local_names(fn.node)
        self.globals_declared: Set[str] = set()
        for sub in ast.walk(fn.node):
            if isinstance(sub, ast.Global):
                self.globals_declared.update(sub.names)

    def run(self) -> FunctionSummary:
        for stmt in self.fn.node.body:
            self.visit(stmt)
        return self.summary

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs summarise themselves

    visit_AsyncFunctionDef = visit_FunctionDef

    # -- writes --------------------------------------------------------------

    def _global_target(self, name: str) -> Optional[str]:
        """A bare name written through: the global it denotes, if any.

        A ``global`` declaration overrides local shadowing; otherwise a
        locally bound name never writes module state.
        """
        if name in self.globals_declared:
            return self.state.resolve_global(self.mod, name) or f"{self.mod.key}::{name}"
        if name in self.locals:
            return None
        return self.state.resolve_global(self.mod, name)

    def _record(self, target: str, line: int, kind: str) -> None:
        self.summary.global_writes.append(GlobalWrite(target, line, kind))

    def _check_store_target(self, target: ast.AST, line: int, kind_hint: str) -> None:
        if isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name):
                resolved = self._global_target(base.id)
                if resolved is not None:
                    self._record(resolved, line, kind_hint)
            elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
                resolved = self.state.resolve_module_attr(
                    self.mod, base.value.id, base.attr
                )
                if resolved is not None and base.value.id not in self.locals:
                    self._record(resolved, line, kind_hint)
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name):
                if base.id == "cls" or base.id == self.fn.owner_class:
                    owner = self.fn.owner_class
                elif base.id in self.mod.classes and base.id not in self.locals:
                    owner = base.id
                else:
                    owner = None
                if owner is not None:
                    self._record(
                        f"{self.mod.key}::{owner}.{target.attr}", line, "class-attr"
                    )
        elif isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                resolved = self._global_target(target.id)
                if resolved is not None:
                    self._record(resolved, line, "rebind")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store_target(target, node.lineno, "subscript")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target, node.lineno, "subscript")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_store_target(node.target, node.lineno, "subscript")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store_target(target, node.lineno, "delete")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
            base = func.value
            if isinstance(base, ast.Name):
                resolved = self._global_target(base.id)
                if resolved is not None:
                    self._record(resolved, node.lineno, f"method .{func.attr}()")
            elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
                resolved = self.state.resolve_module_attr(
                    self.mod, base.value.id, base.attr
                )
                if resolved is not None and base.value.id not in self.locals:
                    self._record(resolved, node.lineno, f"method .{func.attr}()")
        self.generic_visit(node)

    # -- raises --------------------------------------------------------------

    def visit_Raise(self, node: ast.Raise) -> None:
        name = _exception_name(node.exc)
        if name is not None:
            self.summary.raises.add(name)
        self.generic_visit(node)


# -- summary propagation -------------------------------------------------------


def _precise_callee_edges(graph: CallGraph, qualname: str) -> List[CallEdge]:
    return sorted(
        {e for e in graph.callees(qualname) if not e.ambiguous},
        key=lambda e: (e.line, e.callee, e.kind),
    )


def _line_callees(graph: CallGraph, qualname: str) -> Dict[int, List[str]]:
    lines: Dict[int, List[str]] = {}
    for edge in _precise_callee_edges(graph, qualname):
        lines.setdefault(edge.line, []).append(edge.callee)
    return lines


def compute_summaries(graph: CallGraph) -> Dict[str, FunctionSummary]:
    """Per-function summaries, with may-raise and wallclock-return closed
    over precise call edges to a fixpoint."""
    state = _StateIndex.build(graph)
    summaries: Dict[str, FunctionSummary] = {}
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        if fn.node is None:
            summaries[qualname] = FunctionSummary(qualname=qualname)
            continue
        summaries[qualname] = _SummaryVisitor(
            graph.modules[fn.module], fn, state
        ).run()

    # may-raise: caller-ward worklist until no set grows.
    for summary in summaries.values():
        summary.may_raise = set(summary.raises)
    worklist = sorted(summaries)
    while worklist:
        next_round: Set[str] = set()
        for qualname in worklist:
            own = summaries[qualname].may_raise
            if not own:
                continue
            for edge in graph.callers(qualname):
                caller = summaries.get(edge.caller)
                if caller is None or edge.ambiguous:
                    continue
                if not own <= caller.may_raise:
                    caller.may_raise |= own
                    next_round.add(edge.caller)
        worklist = sorted(next_round)

    # wallclock-return: iterate the flow pass until no flag flips (each
    # round can only turn flags True, so this terminates quickly).
    for _ in range(10):
        changed = False
        for qualname in sorted(summaries):
            fn = graph.functions[qualname]
            if fn.node is None or summaries[qualname].wallclock_return:
                continue
            flow = _TaintFlow(graph, graph.modules[fn.module], fn, summaries)
            flow.run(collect=False)
            if flow.returns_tainted:
                summaries[qualname].wallclock_return = True
                changed = True
        if not changed:
            break
    return summaries


# -- DT305: flow-sensitive wall-clock-into-sim-time taint ----------------------


class _TaintFlow:
    """One forward pass over a function body: track wall-clock-tainted
    locals (kill on clean reassignment), flag sinks, record whether the
    return value is tainted."""

    def __init__(
        self,
        graph: CallGraph,
        mod: ModuleInfo,
        fn: FunctionInfo,
        summaries: Mapping[str, FunctionSummary],
    ) -> None:
        self.mod = mod
        self.fn = fn
        self.summaries = summaries
        self.line_callees = _line_callees(graph, fn.qualname)
        self.tainted: Dict[str, str] = {}  # local name -> source description
        self.violations: List[Violation] = []
        self.returns_tainted = False
        self._collect = True

    # -- expression taint ----------------------------------------------------

    def _call_taint(self, node: ast.Call) -> Optional[str]:
        if _is_wallclock_ref(self.mod, node.func):
            ref = _ref_string(node.func)
            return f"{ref}() at line {node.lineno}"
        for callee in self.line_callees.get(node.lineno, ()):
            summary = self.summaries.get(callee)
            if summary is not None and summary.wallclock_return:
                return f"call to {callee} (returns wall-clock time)"
        func = node.func
        ident = func.id if isinstance(func, ast.Name) else None
        if ident in _TAINT_WRAPPERS:
            for arg in node.args:
                desc = self._expr_taint(arg)
                if desc is not None:
                    return desc
        return None

    def _expr_taint(self, node: ast.AST) -> Optional[str]:
        """A description of the wall-clock source this expression carries,
        or None when it is clean."""
        if isinstance(node, ast.Name):
            return self.tainted.get(node.id)
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.Attribute):
            return self._expr_taint(node.value)
        if isinstance(node, ast.BinOp):
            return self._expr_taint(node.left) or self._expr_taint(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._expr_taint(node.operand)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                desc = self._expr_taint(value)
                if desc is not None:
                    return desc
        if isinstance(node, ast.IfExp):
            return self._expr_taint(node.body) or self._expr_taint(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                desc = self._expr_taint(elt)
                if desc is not None:
                    return desc
        return None

    # -- sinks ---------------------------------------------------------------

    def _flag(self, line: int, col: int, desc: str, other: ast.AST, op: str) -> None:
        if not self._collect:
            return
        try:
            rendered = ast.unparse(other)
        except (ValueError, RecursionError):
            rendered = "<expression>"
        if len(rendered) > 40:
            rendered = rendered[:37] + "..."
        self.violations.append(
            Violation(
                rule="DT305",
                path=self.fn.module,
                line=line,
                col=col,
                message=(
                    f"wall-clock value ({desc}) {op} simulated-time "
                    f"expression `{rendered}` in {self.fn.name}"
                ),
            )
        )

    def _check_sinks(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Compare):
                operands = [sub.left] + list(sub.comparators)
                for i, left in enumerate(operands[:-1]):
                    right = operands[i + 1]
                    self._check_pair(sub, left, right, "compared with")
            elif isinstance(sub, ast.BinOp) and isinstance(sub.op, (ast.Add, ast.Sub)):
                self._check_pair(sub, sub.left, sub.right, "added to/subtracted from")

    def _check_pair(self, site: ast.AST, left: ast.AST, right: ast.AST, op: str) -> None:
        for tainted_side, other in ((left, right), (right, left)):
            desc = self._expr_taint(tainted_side)
            if desc is None:
                continue
            if self._expr_taint(other) is not None:
                continue  # wall-vs-wall arithmetic is legitimate timing
            if _is_simclockish(other) or (
                isinstance(other, ast.BinOp) and (
                    _is_simclockish(other.left) or _is_simclockish(other.right)
                )
            ):
                self._flag(site.lineno, site.col_offset, desc, other, op)
            return

    # -- statement walk ------------------------------------------------------

    def run(self, collect: bool = True) -> None:
        self._collect = collect
        self._block(self.fn.node.body)

    def _block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes analyse themselves
        if isinstance(stmt, ast.Assign):
            self._check_sinks(stmt.value)
            desc = self._expr_taint(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if desc is not None:
                        self.tainted[target.id] = desc
                    else:
                        self.tainted.pop(target.id, None)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._check_sinks(stmt.value)
                desc = self._expr_taint(stmt.value)
                if isinstance(stmt.target, ast.Name):
                    if desc is not None:
                        self.tainted[stmt.target.id] = desc
                    else:
                        self.tainted.pop(stmt.target.id, None)
            return
        if isinstance(stmt, ast.AugAssign):
            self._check_sinks(stmt.value)
            desc = self._expr_taint(stmt.value)
            if isinstance(stmt.target, ast.Name) and desc is not None:
                self.tainted[stmt.target.id] = desc
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_sinks(stmt.value)
                if self._expr_taint(stmt.value) is not None:
                    self.returns_tainted = True
            return
        # Compound statements: check embedded expressions, then walk the
        # nested blocks in order sharing one taint state (union over
        # branches — conservative but simple).
        for expr in self._stmt_exprs(stmt):
            self._check_sinks(expr)
        for body in self._stmt_blocks(stmt):
            self._block(body)

    @staticmethod
    def _stmt_exprs(stmt: ast.stmt):
        for attr in ("test", "iter", "value", "exc"):
            node = getattr(stmt, attr, None)
            if isinstance(node, ast.AST):
                yield node
        for item in getattr(stmt, "items", []) or []:
            yield item.context_expr

    @staticmethod
    def _stmt_blocks(stmt: ast.stmt):
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(stmt, attr, None)
            if block:
                yield block
        for handler in getattr(stmt, "handlers", []) or []:
            yield handler.body


# -- DT301: fork/service-reachable global writes -------------------------------


def _entry_reachable(graph: CallGraph) -> Dict[str, Tuple[FunctionInfo, Tuple[str, ...]]]:
    """qualname -> (entry point, call chain from it), BFS over precise
    edges from every declared entry point; first (shortest) chain wins."""
    reached: Dict[str, Tuple[FunctionInfo, Tuple[str, ...]]] = {}
    frontier: List[str] = []
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        if fn.entrypoint:
            reached[qualname] = (fn, (qualname,))
            frontier.append(qualname)
    while frontier:
        discovered: List[str] = []
        for qualname in frontier:
            entry, chain = reached[qualname]
            for edge in _precise_callee_edges(graph, qualname):
                if edge.callee in reached or edge.callee not in graph.functions:
                    continue
                reached[edge.callee] = (entry, chain + (edge.callee,))
                discovered.append(edge.callee)
        frontier = sorted(discovered)
    return reached


def _dt301(graph: CallGraph, summaries: Mapping[str, FunctionSummary]) -> List[Violation]:
    violations: List[Violation] = []
    reached = _entry_reachable(graph)
    for qualname in sorted(reached):
        entry, chain = reached[qualname]
        summary = summaries.get(qualname)
        if summary is None or not summary.global_writes:
            continue
        fn = graph.functions[qualname]
        rendered = " -> ".join(chain)
        for write in sorted(set(summary.global_writes), key=lambda w: (w.line, w.target)):
            violations.append(
                Violation(
                    rule="DT301",
                    path=fn.module,
                    line=write.line,
                    col=0,
                    message=(
                        f"{write.target} ({write.kind}) is shared mutable state "
                        f"written on a path from {entry.entrypoint} entrypoint "
                        f"{entry.name}; chain: {rendered}"
                    ),
                )
            )
    return violations


# -- DT302: unpicklable callables at the Pool boundary -------------------------


def _free_names(node: ast.AST, enclosing_locals: Set[str]) -> List[str]:
    """Names a nested def reads from its enclosing function's scope."""
    own = _local_names(node)
    free: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            if sub.id in enclosing_locals and sub.id not in own:
                free.add(sub.id)
    return sorted(free)


def _dt302(graph: CallGraph) -> List[Violation]:
    violations: List[Violation] = []
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        if fn.node is None:
            continue
        mod = graph.modules[fn.module]
        pool_names = {"pool"}
        assignments: Dict[str, ast.AST] = {}
        nested_defs: Dict[str, ast.AST] = {}
        for sub in ast.walk(fn.node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1 and isinstance(
                sub.targets[0], ast.Name
            ):
                assignments[sub.targets[0].id] = sub.value
                ref = _ref_string(sub.value.func) if isinstance(sub.value, ast.Call) else None
                if ref is not None and ref.split(".")[-1].endswith("Pool"):
                    pool_names.add(sub.targets[0].id)
            elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
                ref = (
                    _ref_string(sub.context_expr.func)
                    if isinstance(sub.context_expr, ast.Call)
                    else None
                )
                if ref is not None and ref.split(".")[-1].endswith("Pool") and isinstance(
                    sub.optional_vars, ast.Name
                ):
                    pool_names.add(sub.optional_vars.id)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not fn.node:
                nested_defs[sub.name] = sub

        def check_callable(arg: ast.AST, call: ast.Call) -> None:
            if isinstance(arg, ast.Lambda):
                violations.append(
                    Violation(
                        rule="DT302",
                        path=fn.module,
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"lambda crosses the Pool boundary in {fn.name}; "
                            "pickle cannot ship it — use a module-level function"
                        ),
                    )
                )
                return
            if isinstance(arg, ast.Attribute):
                ref = _ref_string(arg)
                if ref is not None and ref.startswith("self."):
                    violations.append(
                        Violation(
                            rule="DT302",
                            path=fn.module,
                            line=call.lineno,
                            col=call.col_offset,
                            message=(
                                f"bound method {ref} crosses the Pool boundary in "
                                f"{fn.name}; it drags its whole instance through pickle"
                            ),
                        )
                    )
                return
            if isinstance(arg, ast.IfExp):
                check_callable(arg.body, call)
                check_callable(arg.orelse, call)
                return
            if isinstance(arg, ast.Name):
                if arg.id in nested_defs:
                    captured = _free_names(nested_defs[arg.id], _local_names(fn.node))
                    cells = f" (captures {', '.join(captured)})" if captured else ""
                    violations.append(
                        Violation(
                            rule="DT302",
                            path=fn.module,
                            line=call.lineno,
                            col=call.col_offset,
                            message=(
                                f"closure {arg.id} crosses the Pool boundary in "
                                f"{fn.name}{cells}; nested functions are unpicklable"
                            ),
                        )
                    )
                    return
                bound = assignments.get(arg.id)
                if bound is not None and isinstance(bound, (ast.Lambda, ast.IfExp)):
                    check_callable(bound, call)

        for sub in ast.walk(fn.node):
            if not (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute)):
                continue
            if sub.func.attr not in _POOL_METHODS:
                continue
            receiver = sub.func.value
            if not (isinstance(receiver, ast.Name) and receiver.id in pool_names):
                continue
            if sub.args:
                check_callable(sub.args[0], sub)
    return violations


# -- DT303: exception atomicity ------------------------------------------------


def _terminates(block: Sequence[ast.stmt]) -> bool:
    """Does control never fall out of the bottom of this block?"""
    return bool(block) and isinstance(
        block[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _protected_mutation_roots(stmt: ast.stmt) -> List[Tuple[str, int]]:
    """(receiver root, line) for every in-place mutation inside ``stmt``
    whose receiver is a name-rooted attribute/subscript chain.

    Mutations inside an ``if``/``try`` branch that *terminates* (ends in
    return/raise/continue/break) are excluded: control never reaches the
    statements after the enclosing statement on that path, so they cannot
    pair with a later mutation.  Each branch interior is still scanned on
    its own by the block recursion in :func:`_dt303`.
    """
    roots: List[Tuple[str, int]] = []

    def root_of(node: ast.AST) -> Optional[str]:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def walk(sub: ast.AST) -> None:
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested scopes are their own graph nodes
        if isinstance(sub, (ast.If, ast.Try)):
            if isinstance(sub, ast.If):
                walk(sub.test)
            blocks = [sub.body, sub.orelse]
            if isinstance(sub, ast.Try):
                blocks.append(sub.finalbody)
                blocks.extend(handler.body for handler in sub.handlers)
            for block in blocks:
                if not _terminates(block):
                    for child in block:
                        walk(child)
            return
        if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = root_of(target)
                    if root is not None:
                        roots.append((root, sub.lineno))
        elif isinstance(sub, ast.Delete):
            for target in sub.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = root_of(target)
                    if root is not None:
                        roots.append((root, sub.lineno))
        elif isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            if sub.func.attr in _CONTRACT_MUTATORS:
                root = root_of(sub.func.value)
                if root is not None:
                    roots.append((root, sub.lineno))
        for child in ast.iter_child_nodes(sub):
            walk(child)

    walk(stmt)
    return roots


def _dt303(graph: CallGraph, summaries: Mapping[str, FunctionSummary]) -> List[Violation]:
    violations: List[Violation] = []
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        if fn.node is None or not (fn.decision_path or fn.hot_path):
            continue
        line_callees = _line_callees(graph, qualname)

        def raise_reason(stmt: ast.stmt) -> Optional[str]:
            """Why this statement may raise, if it may."""
            if isinstance(stmt, ast.Raise):
                return None  # an explicit raise is deliberate, not partial
            end = getattr(stmt, "end_lineno", stmt.lineno)
            for line in range(stmt.lineno, end + 1):
                for callee in line_callees.get(line, ()):
                    summary = summaries.get(callee)
                    if summary is not None and summary.may_raise:
                        names = ", ".join(sorted(summary.may_raise)[:3])
                        return f"call to {callee} may raise {names}"
            return None

        def scan_block(stmts: Sequence[ast.stmt], in_try: bool) -> None:
            # last completed mutation per receiver root, and the may-raise
            # statement seen since it (root -> (mutation line, reason, line)).
            pending: Dict[str, Tuple[int, str, int]] = {}
            last_mut: Dict[str, int] = {}
            reported: Set[int] = set()
            for stmt in stmts:
                muts = _protected_mutation_roots(stmt)
                if muts:
                    for root, line in muts:
                        if root in pending and pending[root][2] not in reported:
                            first_line, reason, raise_line = pending[root]
                            reported.add(raise_line)
                            violations.append(
                                Violation(
                                    rule="DT303",
                                    path=fn.module,
                                    line=raise_line,
                                    col=0,
                                    message=(
                                        f"{reason} between paired mutations of "
                                        f"`{root}` (lines {first_line} and {line}) "
                                        f"in {fn.name}; an exception here leaves "
                                        "the structure half-updated"
                                    ),
                                )
                            )
                        pending.pop(root, None)
                        last_mut[root] = line
                else:
                    # A try statement's own raisers are its handlers'
                    # business (the recursion below still scans them).
                    handled = in_try or isinstance(stmt, ast.Try)
                    reason = None if handled else raise_reason(stmt)
                    if reason is not None:
                        for root, line in last_mut.items():
                            if root not in pending:
                                pending[root] = (line, reason, stmt.lineno)
                # Recurse into nested blocks; a try body's raisers are
                # assumed handled by its handlers.
                nested_try = in_try or isinstance(stmt, ast.Try)
                for attr in ("body", "orelse", "finalbody"):
                    block = getattr(stmt, attr, None)
                    if block and not isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        scan_block(block, nested_try)
                for handler in getattr(stmt, "handlers", []) or []:
                    scan_block(handler.body, in_try)

        scan_block(fn.node.body, False)

        # Broad handlers that can swallow ContractError.
        for sub in ast.walk(fn.node):
            if not isinstance(sub, ast.Try):
                continue
            for handler in sub.handlers:
                htype = handler.type
                ident = None
                if htype is None:
                    ident = "bare except"
                elif isinstance(htype, ast.Name) and htype.id in ("Exception", "BaseException"):
                    ident = f"except {htype.id}"
                elif isinstance(htype, ast.Attribute) and htype.attr in ("Exception", "BaseException"):
                    ident = f"except {htype.attr}"
                if ident is None:
                    continue
                reraises = any(
                    isinstance(inner, ast.Raise) and inner.exc is None
                    for inner in ast.walk(ast.Module(body=list(handler.body), type_ignores=[]))
                )
                if reraises:
                    continue
                violations.append(
                    Violation(
                        rule="DT303",
                        path=fn.module,
                        line=handler.lineno,
                        col=handler.col_offset,
                        message=(
                            f"broad `{ident}` in decision/hot-path {fn.name} can "
                            "swallow ContractError; catch specific exceptions or re-raise"
                        ),
                    )
                )
    return violations


# -- DT304: stale suppressions -------------------------------------------------


def directive_comments(source: str) -> List[Tuple[int, str, str]]:
    """(line, kind, payload) for every real ``# repro:`` directive comment.

    Reads COMMENT tokens via :mod:`tokenize`, so directives mentioned in
    docstrings or string literals are invisible — exactly the property the
    regex-based extractors lack and DT304 needs to avoid flagging prose.
    Kinds: ``allow`` (payload = comma list of ids), ``calls`` (payload =
    target list), ``budget`` (payload = the declared budget).
    """
    found: List[Tuple[int, str, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return found
    def directive(regex, text: str):
        """Match only when the directive *is* the comment (modulo leading
        hash marks/space) — prose comments that merely mention a directive
        (`# a \\`# repro: calls[...]\\` covered this line`) do not count."""
        match = regex.search(text)
        if match is None or text[: match.start()].strip(" \t#"):
            return None
        return match

    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        line = tok.start[0]
        allow = directive(_ALLOW_RE, tok.string)
        if allow is not None:
            found.append((line, "allow", allow.group(1)))
        calls = directive(_CALLS_RE, tok.string)
        if calls is not None:
            found.append((line, "calls", calls.group(1)))
        budget = directive(_BUDGET_RE, tok.string)
        if budget is not None:
            found.append((line, "budget", budget.group(1)))
        entry = directive(_ENTRYPOINT_RE, tok.string)
        if entry is not None:
            found.append((line, "entrypoint", entry.group(1)))
    return found


def stale_suppression_violations(
    graph: CallGraph,
    used_allows: Mapping[str, Set[Tuple[int, str]]],
) -> List[Violation]:
    """DT304: directives that suppressed or declared nothing this run.

    ``used_allows`` maps module key -> ``(line, rule-id)`` pairs credited
    by the engine's suppression ledger plus the interproc seed filter.
    ``allow[DT304]`` ids are exempt from the staleness computation itself
    (they are consumed by this very rule, downstream of it); the engine
    still honours them when filtering DT304's own output.
    """
    violations: List[Violation] = []
    dynamic_lines: Dict[str, Set[int]] = {}
    for dyn in graph.dynamic_calls:
        dynamic_lines.setdefault(dyn.module, set()).add(dyn.line)
    for key in sorted(graph.modules):
        mod = graph.modules[key]
        used = used_allows.get(key, set())
        def_lines = {fn.line for fn in mod.functions.values()}
        entry_fns = {
            line
            for fn in mod.functions.values()
            if fn.entrypoint
            for line in (fn.line, fn.line - 1)
        }
        for line, kind, payload in directive_comments(mod.source):
            if kind == "allow":
                ids = [t.strip() for t in payload.split(",") if t.strip()]
                for rid in ids:
                    if rid == "DT304":
                        continue
                    if rid == "*":
                        if not any(uline == line for uline, _ in used):
                            violations.append(
                                Violation(
                                    rule="DT304",
                                    path=key,
                                    line=line,
                                    col=0,
                                    message="allow[*] suppresses nothing on this line",
                                )
                            )
                    elif (line, rid) not in used:
                        violations.append(
                            Violation(
                                rule="DT304",
                                path=key,
                                line=line,
                                col=0,
                                message=(
                                    f"allow[{rid}] suppresses nothing: {rid} no "
                                    "longer fires on this line — delete the directive"
                                ),
                            )
                        )
            elif kind == "calls":
                if line not in dynamic_lines.get(key, ()):
                    violations.append(
                        Violation(
                            rule="DT304",
                            path=key,
                            line=line,
                            col=0,
                            message=(
                                f"calls[{payload}] annotates a line with no "
                                "dynamic call left — delete the directive"
                            ),
                        )
                    )
            elif kind == "budget":
                if line not in def_lines and line + 1 not in def_lines:
                    violations.append(
                        Violation(
                            rule="DT304",
                            path=key,
                            line=line,
                            col=0,
                            message=(
                                f"budget {payload} declaration is attached to no "
                                "function def — move it onto (or above) a def line"
                            ),
                        )
                    )
            elif kind == "entrypoint":
                if line not in entry_fns:
                    violations.append(
                        Violation(
                            rule="DT304",
                            path=key,
                            line=line,
                            col=0,
                            message=(
                                f"entrypoint[{payload}] declaration is attached to "
                                "no function def — move it onto (or above) a def line"
                            ),
                        )
                    )
    return violations


# -- the pass ------------------------------------------------------------------


def analyze_dataflow(graph: CallGraph) -> List[Violation]:
    """Run DT301/DT302/DT303/DT305 over a built call graph.

    DT304 is separate (:func:`stale_suppression_violations`): it needs the
    engine's post-filter suppression ledger, so the engine invokes it after
    every other rule's violations have been routed through the allows.
    """
    summaries = compute_summaries(graph)
    violations: List[Violation] = []
    violations.extend(_dt301(graph, summaries))
    violations.extend(_dt302(graph))
    violations.extend(_dt303(graph, summaries))
    for qualname in sorted(graph.functions):
        fn = graph.functions[qualname]
        if fn.node is None:
            continue
        flow = _TaintFlow(graph, graph.modules[fn.module], fn, summaries)
        flow.run(collect=True)
        violations.extend(flow.violations)
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule, v.message))
