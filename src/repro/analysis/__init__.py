"""Static determinism lint + runtime invariant contracts (DESIGN.md §8-§9).

Three layers of one guarantee:

* :mod:`repro.analysis.rules` / :mod:`repro.analysis.engine` — an AST lint
  that statically rejects determinism hazards (rule ids ``DT101``-``DT107``)
  in the scheduler's decision paths.  CLI: ``repro lint``.
* :mod:`repro.analysis.callgraph` / :mod:`repro.analysis.interproc` /
  :mod:`repro.analysis.dataflow` — the whole-program pass
  (``DT201``-``DT305``): nondeterminism taint along the call graph,
  dynamic-call holes, §IV complexity budgets, and the flow-sensitive
  dataflow rules (fork-shared state, pool picklability, exception
  atomicity, stale suppressions, simulated-time purity; DESIGN.md §13).
  CLI: ``repro lint --interproc`` and ``repro callgraph``.
* :mod:`repro.analysis.contracts` — runtime checkers asserting the DSL
  cross-link, skip-list level monotonicity, Algorithm 1 plan monotonicity
  and prerequisite-respecting dispatch, zero-cost when disabled.
"""

from repro.analysis.annotations import decision_path, entrypoint, hot_path
from repro.analysis.contracts import (
    NULL_CONTRACTS,
    ContractChecker,
    ContractMonitor,
    ContractViolation,
    NullContractChecker,
)
from repro.analysis.engine import (
    LintError,
    LintReport,
    lint_paths,
    lint_source,
    load_baseline,
    module_key,
)
from repro.analysis.rules import DECISION_PATH_DIRS, RULES, Violation, scan_module

__all__ = [
    "RULES",
    "DECISION_PATH_DIRS",
    "Violation",
    "scan_module",
    "LintError",
    "LintReport",
    "decision_path",
    "entrypoint",
    "hot_path",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_key",
    "ContractViolation",
    "ContractChecker",
    "ContractMonitor",
    "NullContractChecker",
    "NULL_CONTRACTS",
]
