"""Content-hashed incremental cache for the lint stack (DESIGN.md §14).

``repro lint --interproc`` re-reads and re-analyzes the whole tree on
every invocation; on the edit-lint-edit loop almost all of that work
re-derives results for modules that did not change.  This module caches
two levels of results under ``.repro-lint-cache/``, keyed purely by
content — no mtimes, no file-watching, nothing that can go stale:

**Module summaries** (``modules/<sha>.json``) hold one module's raw
intraprocedural violations.  The fingerprint is a SHA-256 over

* the *rule-set fingerprint* — a digest of every source file of the
  ``repro.analysis`` package itself, so editing any rule, pass, or this
  cache invalidates every entry (there is no version constant to forget
  to bump);
* the module key (rule scoping is path-dependent: ``repro/core/x.py``
  and ``repro/metrics/x.py`` lint differently);
* the full source text;
* the **directive ledger** — every real ``# repro:`` comment as seen by
  :func:`repro.analysis.dataflow.directive_comments`.  The ledger is
  redundant today (directives live in the source text, which is already
  hashed) but is hashed separately *by construction*: if the source
  component is ever normalised (comment-stripping, AST-level hashing),
  directive-only edits — an added ``allow[...]``, a changed budget —
  still invalidate the entry.

**Program entries** (``programs/<sha>.json``) hold one complete
:class:`~repro.analysis.engine.LintReport` for a whole-tree run, keyed
by the sorted ``(module key, module fingerprint)`` pairs plus the
baseline file's content and the interproc flag.  A warm run whose tree
is byte-identical replays the report without parsing a single file; any
changed module falls through to a real run that re-summarizes only the
changed modules (the interprocedural passes are whole-program by nature
and always re-run on a partial hit).

Entries are written atomically (temp file + ``os.replace``) so a killed
run never leaves a torn entry, and unreadable/corrupt entries read as
misses, never as errors.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.rules import Violation

__all__ = [
    "DEFAULT_CACHE_DIR",
    "LintCache",
    "module_fingerprint",
    "ruleset_fingerprint",
]

#: Default cache location, relative to the invoking working directory.
DEFAULT_CACHE_DIR = Path(".repro-lint-cache")

#: Bumped when the on-disk layout of cache entries changes shape.
_FORMAT = "1"

_RULESET_FP: Optional[str] = None


def ruleset_fingerprint() -> str:
    """SHA-256 over the ``repro.analysis`` package's own sources.

    Any edit to a rule, a pass, the engine, or the cache itself yields a
    new fingerprint and therefore a cold cache — correctness never
    depends on remembering to bump a version constant.  Memoized per
    process: the analyzer's own sources do not change mid-run.
    """
    global _RULESET_FP
    if _RULESET_FP is None:
        digest = hashlib.sha256(_FORMAT.encode())
        package_dir = Path(__file__).resolve().parent
        for path in sorted(package_dir.glob("*.py")):
            digest.update(path.name.encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _RULESET_FP = digest.hexdigest()
    return _RULESET_FP


def module_fingerprint(
    key: str, source: str, directives: Sequence[Tuple[int, str, str]]
) -> str:
    """Content hash of one module as the analyzer sees it."""
    header = json.dumps(
        {
            "ruleset": ruleset_fingerprint(),
            "key": key,
            "directives": [list(entry) for entry in directives],
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(header.encode())
    digest.update(b"\0")
    digest.update(source.encode())
    return digest.hexdigest()


def program_digest(
    fingerprints: Dict[str, str], baseline_text: str, interproc: bool
) -> str:
    """Key of a whole-tree run: every module fingerprint, the baseline
    budget's content, and whether the interprocedural stack ran."""
    header = json.dumps(
        {
            "ruleset": ruleset_fingerprint(),
            "modules": sorted(fingerprints.items()),
            "baseline": baseline_text,
            "interproc": interproc,
        },
        sort_keys=True,
    )
    return hashlib.sha256(header.encode()).hexdigest()


def violation_to_record(violation: Violation) -> Dict[str, object]:
    return {
        "rule": violation.rule,
        "path": violation.path,
        "line": violation.line,
        "col": violation.col,
        "message": violation.message,
    }


def violation_from_record(record: Dict[str, object]) -> Violation:
    return Violation(
        rule=record["rule"],
        path=record["path"],
        line=record["line"],
        col=record["col"],
        message=record["message"],
    )


class LintCache:
    """Filesystem-backed summary store; every method treats I/O or decode
    failures as cache misses."""

    def __init__(self, root: "str | Path" = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    # -- raw entries ---------------------------------------------------------

    def _read(self, path: Path) -> Optional[Dict[str, object]]:
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def _write(self, path: Path, payload: Dict[str, object]) -> None:
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            tmp.write_text(json.dumps(payload, sort_keys=True))
            os.replace(tmp, path)
        except OSError:
            pass  # a cache that cannot write is merely cold

    # -- module summaries ----------------------------------------------------

    def _module_path(self, fingerprint: str) -> Path:
        return self.root / "modules" / f"{fingerprint}.json"

    def load_summary(self, fingerprint: str) -> Optional[List[Violation]]:
        """The raw intra violations of the module hashed to ``fingerprint``,
        or None on a miss."""
        payload = self._read(self._module_path(fingerprint))
        if payload is None or not isinstance(payload.get("violations"), list):
            return None
        try:
            return [violation_from_record(rec) for rec in payload["violations"]]
        except (KeyError, TypeError):
            return None

    def store_summary(
        self, fingerprint: str, key: str, violations: Sequence[Violation]
    ) -> None:
        self._write(
            self._module_path(fingerprint),
            {
                "key": key,
                "violations": [violation_to_record(v) for v in violations],
            },
        )

    # -- program entries -----------------------------------------------------

    def _program_path(self, digest: str) -> Path:
        return self.root / "programs" / f"{digest}.json"

    def load_program(self, digest: str) -> Optional[Dict[str, object]]:
        return self._read(self._program_path(digest))

    def store_program(self, digest: str, payload: Dict[str, object]) -> None:
        self._write(self._program_path(digest), payload)
