"""Runtime-visible markers consumed by the interprocedural analyzer.

``DECISION_PATH_DIRS`` marks whole directories as decision paths; these
decorators mark *individual functions* that live outside them — e.g. the
Oozie-lite coordinator's submission loop, or the event engine's dispatch —
so the taint engine (:mod:`repro.analysis.interproc`, rule DT201) treats
them as sinks and the dynamic-call rule (DT202) covers them.

The decorators are deliberately trivial at runtime: they tag the function
object and record it in a registry, nothing else.  The analyzer recognises
them *syntactically* (a decorator whose terminal identifier is
``decision_path`` / ``hot_path``), so annotated code needs no import-time
coupling to the analysis package beyond this leaf module.

``hot_path`` additionally obliges the function to carry a
``# repro: budget O(...)`` declaration — rule DT204 fires on a hot-path
function without one (the same obligation the built-in
``HOT_PATH_REGISTRY`` imposes on the Double Skip List mutators and
``WohaScheduler.select_task``).
"""

from __future__ import annotations

from typing import Callable, Dict, TypeVar

__all__ = [
    "decision_path",
    "hot_path",
    "DECISION_PATH_REGISTRY",
    "HOT_PATH_REGISTRY_RUNTIME",
]

_F = TypeVar("_F", bound=Callable)

#: ``module.qualname`` -> function, for every ``@decision_path`` target.
DECISION_PATH_REGISTRY: Dict[str, Callable] = {}

#: ``module.qualname`` -> function, for every ``@hot_path`` target.
HOT_PATH_REGISTRY_RUNTIME: Dict[str, Callable] = {}


def _register(registry: Dict[str, Callable], fn: Callable) -> None:
    registry[f"{fn.__module__}.{fn.__qualname__}"] = fn


def decision_path(fn: _F) -> _F:
    """Mark ``fn`` as a scheduling-decision function for the taint engine.

    Equivalent to the function living under one of ``DECISION_PATH_DIRS``:
    nondeterminism reaching it interprocedurally is a DT201 violation, and
    unresolved dynamic calls inside it are DT202.
    """
    fn.__repro_decision_path__ = True  # type: ignore[attr-defined]
    _register(DECISION_PATH_REGISTRY, fn)
    return fn


def hot_path(fn: _F) -> _F:
    """Mark ``fn`` as performance-critical: it must declare a budget.

    A hot-path function without a ``# repro: budget O(...)`` comment on (or
    directly above) its ``def`` line is a DT204 violation.
    """
    fn.__repro_hot_path__ = True  # type: ignore[attr-defined]
    _register(HOT_PATH_REGISTRY_RUNTIME, fn)
    return fn
