"""Runtime-visible markers consumed by the interprocedural analyzer.

``DECISION_PATH_DIRS`` marks whole directories as decision paths; these
decorators mark *individual functions* that live outside them — e.g. the
Oozie-lite coordinator's submission loop, or the event engine's dispatch —
so the taint engine (:mod:`repro.analysis.interproc`, rule DT201) treats
them as sinks and the dynamic-call rule (DT202) covers them.

The decorators are deliberately trivial at runtime: they tag the function
object and record it in a registry, nothing else.  The analyzer recognises
them *syntactically* (a decorator whose terminal identifier is
``decision_path`` / ``hot_path``), so annotated code needs no import-time
coupling to the analysis package beyond this leaf module.

``hot_path`` additionally obliges the function to carry a
``# repro: budget O(...)`` declaration — rule DT204 fires on a hot-path
function without one (the same obligation the built-in
``HOT_PATH_REGISTRY`` imposes on the Double Skip List mutators and
``WohaScheduler.select_task``).
"""

from __future__ import annotations

from typing import Callable, Dict, TypeVar

__all__ = [
    "decision_path",
    "entrypoint",
    "hot_path",
    "DECISION_PATH_REGISTRY",
    "ENTRYPOINT_KINDS",
    "ENTRYPOINT_REGISTRY",
    "HOT_PATH_REGISTRY_RUNTIME",
]

_F = TypeVar("_F", bound=Callable)

#: ``module.qualname`` -> function, for every ``@decision_path`` target.
DECISION_PATH_REGISTRY: Dict[str, Callable] = {}

#: ``module.qualname`` -> function, for every ``@hot_path`` target.
HOT_PATH_REGISTRY_RUNTIME: Dict[str, Callable] = {}

#: The boundary kinds an entry point may declare.
ENTRYPOINT_KINDS = ("fork", "service")

#: ``module.qualname`` -> kind, for every ``@entrypoint(...)`` target.
ENTRYPOINT_REGISTRY: Dict[str, str] = {}


def _register(registry: Dict[str, Callable], fn: Callable) -> None:
    registry[f"{fn.__module__}.{fn.__qualname__}"] = fn


def decision_path(fn: _F) -> _F:
    """Mark ``fn`` as a scheduling-decision function for the taint engine.

    Equivalent to the function living under one of ``DECISION_PATH_DIRS``:
    nondeterminism reaching it interprocedurally is a DT201 violation, and
    unresolved dynamic calls inside it are DT202.
    """
    fn.__repro_decision_path__ = True  # type: ignore[attr-defined]
    _register(DECISION_PATH_REGISTRY, fn)
    return fn


def hot_path(fn: _F) -> _F:
    """Mark ``fn`` as performance-critical: it must declare a budget.

    A hot-path function without a ``# repro: budget O(...)`` comment on (or
    directly above) its ``def`` line is a DT204 violation.
    """
    fn.__repro_hot_path__ = True  # type: ignore[attr-defined]
    _register(HOT_PATH_REGISTRY_RUNTIME, fn)
    return fn


def entrypoint(kind: str) -> Callable[[_F], _F]:
    """Mark ``fn`` as a concurrency boundary for the dataflow pass (DT301).

    ``kind`` is ``"fork"`` (a ``multiprocessing`` pool worker — everything
    reachable from it runs in a forked child, so module/class-level mutable
    writes diverge from the parent silently) or ``"service"`` (a request
    handler serving concurrent tenants over shared process state).  The
    comment form ``# repro: entrypoint[fork]`` on (or directly above) the
    ``def`` line is equivalent and keeps annotated modules import-free.
    """
    if kind not in ENTRYPOINT_KINDS:
        raise ValueError(f"entrypoint kind must be one of {ENTRYPOINT_KINDS}, got {kind!r}")

    def mark(fn: _F) -> _F:
        fn.__repro_entrypoint__ = kind  # type: ignore[attr-defined]
        ENTRYPOINT_REGISTRY[f"{fn.__module__}.{fn.__qualname__}"] = kind
        return fn

    return mark
