"""Picklable scenario registry for the sharded experiment runner.

Each scenario is a module-level function ``(seed, scale) -> (workflows,
outages)`` so a worker process can regenerate its cell's workload from two
numbers instead of unpickling workflow graphs.  Everything derives from the
given seed through :func:`numpy.random.default_rng` — never from wall clock
or process identity — so the same cell produces the same workload in any
worker, in any process, in any order (the determinism bar the runner's
sequential-equality tests pin).

``scale`` stretches the workload size continuously: 1.0 is the reference
size (the bench tier), small fractions give tier-1-friendly smoke grids.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.cluster.failures import Outage
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.model import Workflow
from repro.workloads.yahoo import YahooTraceConfig, generate_yahoo_workflows

__all__ = [
    "SCENARIOS",
    "periodic_scenario",
    "yahoo_scenario",
    "outages_scenario",
    "serve_scenario",
]

#: (workflows to run, outages to inject) — the runner's scenario contract.
ScenarioPayload = Tuple[List[Workflow], Tuple[Outage, ...]]


def _periodic_workflows(seed: int, scale: float) -> List[Workflow]:
    """Staggered long-task ETL chains with seeded duration jitter."""
    rng = np.random.default_rng(seed)
    count = max(1, round(6 * scale))
    workflows = []
    for i in range(count):
        task_s = float(rng.choice([120.0, 300.0, 600.0]))
        workflows.append(
            WorkflowBuilder(f"chain{i:03d}")
            .submit_at(float(5 * i))
            .job("extract", maps=8, reduces=4, map_s=task_s, reduce_s=task_s / 1.5)
            .job("transform", maps=6, reduces=2, map_s=task_s, reduce_s=task_s / 1.5,
                 after=["extract"])
            .job("load", maps=4, reduces=1, map_s=task_s / 1.5, reduce_s=task_s / 3,
                 after=["transform"])
            .deadline(relative=20 * task_s)
            .build()
        )
    return workflows


def periodic_scenario(seed: int, scale: float = 1.0) -> ScenarioPayload:
    """Long-task chains where ticks dominate; no failures."""
    return _periodic_workflows(seed, scale), ()


def yahoo_scenario(seed: int, scale: float = 1.0) -> ScenarioPayload:
    """A scaled Yahoo!-like workflow set (61 workflows / 180 jobs at 1.0).

    The composition shrinks with ``scale`` while staying feasible for
    :func:`~repro.workloads.yahoo.partition_jobs`: every multi-job
    workflow keeps between 2 and ``max_workflow_size`` jobs.
    """
    num_workflows = max(3, round(61 * scale))
    num_single = max(1, num_workflows // 4)
    total_jobs = num_single + 3 * (num_workflows - num_single)
    config = YahooTraceConfig(
        num_workflows=num_workflows,
        total_jobs=total_jobs,
        num_single_job=num_single,
        seed=seed,
        submission_window=600.0 * max(scale, 0.05),
    )
    return generate_yahoo_workflows(config), ()


def outages_scenario(seed: int, scale: float = 1.0) -> ScenarioPayload:
    """The periodic workload under seeded tracker kill/revive outages.

    Every outage revives, and outages hit distinct tracker ids, so all
    workflows eventually complete and the cell terminates.
    """
    workflows = _periodic_workflows(seed, scale)
    rng = np.random.default_rng(seed + 1)
    count = max(1, round(2 * scale))
    outages = tuple(
        Outage(
            time=round(float(rng.uniform(1.0, 90.0)), 1),
            tracker_id=i,
            down_for=round(float(rng.uniform(5.0, 60.0)), 1),
        )
        for i in range(count)
    )
    return workflows, outages


def serve_scenario(seed: int, scale: float = 1.0) -> ScenarioPayload:
    """Planning-*cost*-heavy templates for the serve tier's load tests.

    The other scenarios size their workflows for scheduling runs; here the
    expensive part is the client-side pipeline itself (cap search ×
    Algorithm 1), so each template is a wide fan-out/fan-in DAG with large
    task counts — milliseconds of planning, not microseconds — which is
    what makes the serve bench's batching-vs-not comparison meaningful.
    ``scale`` stretches the template *count*; the per-template size is
    fixed so costs stay comparable across scales.
    """
    rng = np.random.default_rng(seed)
    count = max(2, round(4 * scale))
    workflows = []
    for i in range(count):
        map_s = float(rng.choice([30.0, 45.0, 60.0]))
        builder = (
            WorkflowBuilder(f"serve{i:03d}")
            .job("ingest", maps=96, reduces=16, map_s=map_s, reduce_s=2 * map_s)
        )
        for branch in range(6):
            builder.job(
                f"branch{branch}",
                maps=48 + 8 * branch,
                reduces=8,
                map_s=map_s * (1.0 + 0.1 * branch),
                reduce_s=map_s,
                after=["ingest"],
            )
        builder.job(
            "merge", maps=64, reduces=12, map_s=map_s, reduce_s=3 * map_s,
            after=[f"branch{b}" for b in range(6)],
        )
        builder.job("publish", maps=8, reduces=2, map_s=map_s / 2, reduce_s=map_s,
                    after=["merge"])
        workflows.append(builder.deadline(relative=60 * map_s).build())
    return workflows, ()


SCENARIOS: Dict[str, Callable[[int, float], ScenarioPayload]] = {
    "periodic": periodic_scenario,
    "yahoo": yahoo_scenario,
    "outages": outages_scenario,
    "serve": serve_scenario,
}
