"""Profile-guided hot-path inspection: the ``repro profile`` subcommand.

Runs one deterministic scenario from :mod:`repro.experiments.scenarios`
under :mod:`cProfile` and renders the top-N functions by cumulative or
internal time, together with the run's per-event cost (µs/event).  This is
the workflow that produced the ISSUE 7 micro-kernel: the per-event fast
path is only as good as the *unit* cost of the events that survive
parking/batching, and cProfile is how those unit costs get attributed to
``select_task`` / skip-list walks / heartbeat dispatch rather than guessed.

The workload is a pure function of ``(scenario, seed, scale)`` — the same
contract the sharded runner relies on — so two profiles of the same cell
differ only in timings, never in call counts or decision streams.

Wall-clock reads live here by design (the module *measures*; it is not a
decision path), each under an explicit DT102 allow.
"""

from __future__ import annotations

import asyncio
import cProfile
import os
import pstats
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.config import ClusterConfig
from repro.cluster.failures import FailureSchedule
from repro.cluster.simulation import ClusterSimulation
from repro.experiments.runner import _make_stack
from repro.experiments.scenarios import SCENARIOS
from repro.metrics.report import format_table

__all__ = ["ProfileReport", "profile_scenario"]


@dataclass
class ProfileReport:
    """One profiled run: headline numbers plus the rendered hot-spot table."""

    scenario: str
    scheduler: str
    seed: int
    scale: float
    nodes: int
    fast: bool
    wall_s: float
    events: int
    us_per_event: float
    rows: List[Tuple[str, int, float, float, float]]
    """(location, calls, tottime s, cumtime s, tottime µs/event) top-N."""

    def render(self) -> str:
        table = format_table(
            ["function", "calls", "tot s", "cum s", "tot µs/event"],
            [list(row) for row in self.rows],
            title=(
                f"top {len(self.rows)} by "
                f"{'cumulative' if self._sorted_cumulative else 'internal'} time"
            ),
            float_fmt="{:.4f}",
        )
        path = "fast" if self.fast else "reference"
        head = (
            f"profile: scenario={self.scenario} scheduler={self.scheduler} "
            f"seed={self.seed} scale={self.scale:g} nodes={self.nodes} path={path}\n"
            f"events={self.events} wall={self.wall_s:.3f}s "
            f"({self.us_per_event:.1f} µs/event under the profiler)\n"
        )
        return head + table

    # Rendering detail only; set by profile_scenario.
    _sorted_cumulative: bool = True


def _short_location(func: Tuple[str, int, str]) -> str:
    """``(file, line, name)`` -> ``name (pkg/module.py:line)``."""
    filename, line, name = func
    if filename == "~":  # builtins have no file
        return name
    parts = filename.replace(os.sep, "/").split("/")
    tail = "/".join(parts[-2:]) if len(parts) >= 2 else parts[-1]
    return f"{name} ({tail}:{line})"


def _hot_rows(
    profiler: cProfile.Profile, events: int, top: int, sort: str
) -> List[Tuple[str, int, float, float, float]]:
    """The top-N (location, calls, tot, cum, µs/event) rows of a profile."""
    stats = pstats.Stats(profiler)
    entries = [
        (func, calls, tottime, cumtime)
        for func, (_cc, calls, tottime, cumtime, _callers) in stats.stats.items()
    ]
    key = (lambda e: e[3]) if sort == "cumulative" else (lambda e: e[2])
    entries.sort(key=key, reverse=True)
    return [
        (
            _short_location(func),
            calls,
            round(tottime, 4),
            round(cumtime, 4),
            round(1e6 * tottime / events, 4) if events else 0.0,
        )
        for func, calls, tottime, cumtime in entries[:top]
    ]


def _profile_serve(
    seed: int, scale: float, nodes: int, fast: bool, top: int, sort: str
) -> ProfileReport:
    """The ``serve`` scenario: profile the batching planner, not a cluster.

    Drives a deterministic request stream straight into
    :meth:`~repro.serve.service.PlanningService.plan` — ``nodes`` synthetic
    tenants per round, alternating recurrent template requests with
    cold (deadline-jittered) ones, ``max(2, round(20 * scale))`` rounds —
    so cProfile attributes cost to the flush/fusion path itself.  ``fast``
    toggles micro-batching: the reference profile builds every miss
    individually through the in-flight guard.  An *event* is one served
    plan request.
    """
    from repro.serve.service import PlanningService, ServiceConfig

    templates = [
        w for w in SCENARIOS["serve"](seed, scale)[0] if w.relative_deadline is not None
    ]
    tenants = max(2, nodes)
    rounds = max(2, round(20 * scale))
    service = PlanningService(ServiceConfig(total_slots=200, batching=fast, window=0.0005))

    schedule = []
    for r in range(rounds):
        burst = []
        for t in range(tenants):
            template = templates[(r + t) % len(templates)]
            if t % 2:  # odd tenants go cold: unique relative deadline
                ordinal = r * tenants + t
                base = template.relative_deadline
                template = template.with_timing(0.0, base * (1.0 + ordinal * 1e-4))
            burst.append((f"tenant{t:02d}", template))
        schedule.append(burst)

    async def drive() -> None:
        for burst in schedule:
            await asyncio.gather(
                *(service.plan(w, tenant=name) for name, w in burst)
            )

    profiler = cProfile.Profile()
    start = time.perf_counter()  # repro: allow[DT102] - measurement, not a decision input
    profiler.enable()
    try:
        asyncio.run(drive())
    finally:
        profiler.disable()
    wall = time.perf_counter() - start  # repro: allow[DT102] - measurement, not a decision input

    events = service.requests
    report = ProfileReport(
        scenario="serve",
        scheduler="planning-service",
        seed=seed,
        scale=scale,
        nodes=tenants,
        fast=fast,
        wall_s=round(wall, 4),
        events=events,
        us_per_event=round(1e6 * wall / events, 3) if events else 0.0,
        rows=_hot_rows(profiler, events, top, sort),
    )
    report._sorted_cumulative = sort == "cumulative"
    return report


def profile_scenario(
    scenario: str,
    scheduler: str = "woha-lpf",
    seed: int = 0,
    scale: float = 0.25,
    nodes: int = 8,
    heartbeat: float = 3.0,
    fast: bool = True,
    top: int = 15,
    sort: str = "cumulative",
) -> ProfileReport:
    """Profile one scenario run; returns the report (pure of global state).

    ``fast`` toggles the runtime fast path (quiescent heartbeats plus
    batched assignment) exactly like the throughput bench, so the two
    profiles of a fast/reference pair attribute cost to the same decision
    stream.  The ``serve`` scenario is special-cased: it profiles the
    planning *service* request path (:func:`_profile_serve`) instead of a
    cluster run, with ``fast`` toggling micro-batching.
    """
    if sort not in ("cumulative", "tottime"):
        raise ValueError(f"sort must be 'cumulative' or 'tottime', got {sort!r}")
    if top <= 0:
        raise ValueError(f"top must be positive, got {top}")
    try:
        make_scenario = SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r}; pick from {sorted(SCENARIOS)}"
        ) from None
    if scenario == "serve":
        return _profile_serve(seed, scale, nodes, fast, top, sort)
    workflows, outages = make_scenario(seed, scale)
    scheduler_obj, mode, planner = _make_stack(scheduler)
    config = ClusterConfig(
        num_nodes=nodes,
        heartbeat_interval=heartbeat if heartbeat > 0 else float("inf"),
        quiescent_heartbeats=fast,
        batched_assignment=fast,
    )
    sim = ClusterSimulation(config, scheduler_obj, submission=mode, planner=planner)
    sim.add_workflows(workflows)
    if outages:
        FailureSchedule(tuple(outages)).apply(sim.sim, sim.jobtracker)

    profiler = cProfile.Profile()
    start = time.perf_counter()  # repro: allow[DT102] - measurement, not a decision input
    profiler.enable()
    try:
        result = sim.run()
    finally:
        profiler.disable()
    wall = time.perf_counter() - start  # repro: allow[DT102] - measurement, not a decision input

    events = result.events_processed
    rows = _hot_rows(profiler, events, top, sort)
    report = ProfileReport(
        scenario=scenario,
        scheduler=scheduler,
        seed=seed,
        scale=scale,
        nodes=nodes,
        fast=fast,
        wall_s=round(wall, 4),
        events=events,
        us_per_event=round(1e6 * wall / events, 3) if events else 0.0,
        rows=rows,
    )
    report._sorted_cumulative = sort == "cumulative"
    return report
