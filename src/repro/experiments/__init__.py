"""Sharded experiment grids (DESIGN.md §11).

:mod:`repro.experiments.runner` fans a (scenario x scheduler x seed) grid
across worker processes and merges the per-cell metrics back into one
deterministic payload; :mod:`repro.experiments.scenarios` is the picklable
scenario registry the workers draw workloads from.
"""

from repro.experiments.runner import (
    CellResult,
    ExperimentCell,
    GridResult,
    run_grid,
    shard_seed,
)
from repro.experiments.scenarios import SCENARIOS

__all__ = [
    "CellResult",
    "ExperimentCell",
    "GridResult",
    "SCENARIOS",
    "run_grid",
    "shard_seed",
]
