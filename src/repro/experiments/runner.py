"""Parallel sharded experiment runner (DESIGN.md §11).

A sweep is a grid of :class:`ExperimentCell`\\ s — (scenario, scheduler,
seed, cluster size, workload scale).  :func:`run_grid` runs every cell,
either inline (``workers=0``) or fanned across a ``multiprocessing`` fork
pool, and folds the per-cell metrics into one
:class:`~repro.metrics.collector.MetricsCollector` via
:meth:`~repro.metrics.collector.MetricsCollector.merge`.

Determinism is the whole design:

* a cell's RNG seed is :func:`shard_seed` — a stable hash of the cell *key*,
  never a worker index, process id or wall clock — so the same cell
  produces the same workload wherever it runs;
* workers regenerate workloads from ``(scenario, seed, scale)`` instead of
  unpickling workflow graphs, so the parent never ships anything a worker
  could observe out of order;
* cells are executed and merged in sorted-key order regardless of worker
  count, so :meth:`GridResult.dumps` is byte-identical for ``workers=0``
  and any ``workers=N`` of the same grid (pinned by
  ``tests/experiments/test_runner.py``).

Wall-clock measurement deliberately lives in ``benchmarks/`` (outside the
linted decision-path tree), not here: the runner's outputs are pure
functions of the grid.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cluster.config import ClusterConfig
from repro.cluster.failures import FailureSchedule
from repro.cluster.simulation import ClusterSimulation, WorkflowStats
from repro.core.client import make_planner
from repro.core.scheduler import WohaScheduler
from repro.experiments.scenarios import SCENARIOS
from repro.metrics.collector import MetricsCollector
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler

__all__ = [
    "ExperimentCell",
    "CellResult",
    "GridResult",
    "shard_seed",
    "run_grid",
]

#: Scheduler stacks a cell may name (mirrors the CLI's registry).
SCHEDULER_STACKS = ("fifo", "fair", "edf", "woha-hlf", "woha-lpf", "woha-mpf")


@dataclass(frozen=True)
class ExperimentCell:
    """One point of a sweep grid.

    ``seed`` is the *grid* seed (replication index); the RNG seed a cell
    actually runs with is :func:`shard_seed` of its key, so two cells
    differing in any coordinate draw unrelated workloads even at the same
    grid seed.
    """

    scenario: str
    scheduler: str
    seed: int
    nodes: int = 8
    scale: float = 0.25

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {self.scenario!r}")
        if self.scheduler not in SCHEDULER_STACKS:
            raise ValueError(f"unknown scheduler {self.scheduler!r}")

    @property
    def key(self) -> str:
        """Stable identity: the shard-seed input and the merge sort key."""
        return (
            f"{self.scenario}|{self.scheduler}|seed={self.seed}"
            f"|nodes={self.nodes}|scale={self.scale:g}"
        )


def shard_seed(cell: ExperimentCell) -> int:
    """Deterministic per-cell RNG seed: a stable hash of the cell key.

    SHA-256 (not Python's salted ``hash``) so the value is identical
    across processes and interpreter invocations; the first 8 bytes give
    a 64-bit seed for :func:`numpy.random.default_rng`.
    """
    digest = hashlib.sha256(cell.key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class CellResult:
    """One cell's simulation outcome, picklable for the worker boundary."""

    key: str
    stats: Dict[str, WorkflowStats]
    metrics: MetricsCollector
    makespan: float
    events_processed: int

    def to_payload(self) -> Dict[str, object]:
        """JSON-able summary used for cross-run byte comparison."""
        return {
            "workflows": {
                name: {
                    "submit_time": ws.submit_time,
                    "completion_time": ws.completion_time,
                    "deadline": ws.deadline,
                    "tardiness": ws.tardiness,
                    "met_deadline": ws.met_deadline,
                }
                for name, ws in sorted(self.stats.items())
            },
            "makespan": self.makespan,
            "events_processed": self.events_processed,
            "tasks_launched": self.metrics.tasks_launched,
            "tasks_completed": self.metrics.tasks_completed,
            "tasks_lost": self.metrics.tasks_lost,
            "utilization": self.metrics.utilization(),
        }


@dataclass
class GridResult:
    """A whole sweep: per-cell results plus the merged collector."""

    cells: List[CellResult]
    merged: MetricsCollector
    workers: int = 0

    @property
    def stats(self) -> Dict[str, Dict[str, WorkflowStats]]:
        """``{cell key: {workflow name: stats}}`` over the grid."""
        return {cell.key: cell.stats for cell in self.cells}

    def to_payload(self) -> Dict[str, object]:
        """Deterministic JSON-able view of the whole grid.

        Excludes ``workers`` on purpose: the payload of a sharded run must
        be byte-identical to the sequential run of the same grid.
        """
        return {
            "cells": {cell.key: cell.to_payload() for cell in self.cells},
            "merged": {
                "window": self.merged.window,
                "utilization": self.merged.utilization(),
                "busy_map_seconds": self.merged.busy_map_seconds,
                "busy_reduce_seconds": self.merged.busy_reduce_seconds,
                "tasks_launched": self.merged.tasks_launched,
                "tasks_completed": self.merged.tasks_completed,
                "tasks_lost": self.merged.tasks_lost,
                "scheduler_counters": self.merged.scheduler_counters,
            },
        }

    def dumps(self) -> str:
        """Canonical JSON of :meth:`to_payload` for byte comparison."""
        return json.dumps(self.to_payload(), sort_keys=True)


def _make_stack(name: str):
    """Resolve a scheduler name to (scheduler, submission mode, planner)."""
    if name == "fifo":
        return FifoScheduler(), "oozie", None
    if name == "fair":
        return FairScheduler(), "oozie", None
    if name == "edf":
        return EdfScheduler(), "oozie", None
    prioritizer = name.split("-", 1)[1]
    return WohaScheduler(), "woha", make_planner(prioritizer)


# repro: entrypoint[fork]
def run_cell(cell: ExperimentCell, batched_assignment: bool = False) -> CellResult:
    """Run one cell to completion (module-level, hence pool-picklable).

    Declared a fork entry point: everything reachable from here runs in a
    pool worker, so the DT301 dataflow rule rejects writes to module or
    class-level mutable state on any path below this function — workers
    must regenerate state from the cell key (the per-shard regeneration
    pattern, DESIGN.md §11), never share it with the parent.
    """
    workflows, outages = SCENARIOS[cell.scenario](shard_seed(cell), cell.scale)
    scheduler, mode, planner = _make_stack(cell.scheduler)
    config = ClusterConfig(
        num_nodes=cell.nodes,
        heartbeat_interval=float("inf"),
        batched_assignment=batched_assignment,
    )
    sim = ClusterSimulation(config, scheduler, submission=mode, planner=planner)
    sim.add_workflows(workflows)
    if outages:
        FailureSchedule(tuple(outages)).apply(sim.sim, sim.jobtracker)
    result = sim.run()
    return CellResult(
        key=cell.key,
        stats=result.stats,
        metrics=result.metrics,
        makespan=result.makespan,
        events_processed=result.events_processed,
    )


# repro: entrypoint[fork]
def _run_cell_batched(cell: ExperimentCell) -> CellResult:
    return run_cell(cell, batched_assignment=True)


def run_grid(
    cells: Sequence[ExperimentCell],
    workers: int = 0,
    batched_assignment: bool = False,
) -> GridResult:
    """Run every cell and merge the metrics, deterministically.

    ``workers=0`` runs inline in this process; ``workers=N`` fans the
    cells over a fork pool of N processes.  Either way the cells run from
    their own shard seeds and the merge folds them in sorted-key order,
    so the returned :class:`GridResult` payload is byte-identical across
    worker counts.
    """
    ordered = sorted(cells, key=lambda cell: cell.key)
    keys = [cell.key for cell in ordered]
    if len(set(keys)) != len(keys):
        raise ValueError("duplicate cell keys in grid")
    worker = _run_cell_batched if batched_assignment else run_cell
    if workers <= 0:
        results = [worker(cell) for cell in ordered]
    else:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=workers) as pool:
            # Pool.map returns results in input order whatever the
            # completion interleaving; input order is sorted-key order.
            results = pool.map(worker, ordered)
    merged: Optional[MetricsCollector] = None
    for result in results:
        if merged is None:
            merged = MetricsCollector(result.metrics.config)
        merged.merge(result.metrics)
    if merged is None:
        merged = MetricsCollector(ClusterConfig(num_nodes=1))
    return GridResult(cells=results, merged=merged, workers=workers)
