"""TaskTracker: a worker node with fixed map/reduce slot counts."""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.tasks import Task, TaskKind

__all__ = ["TaskTracker"]


class TaskTracker:
    """Slot bookkeeping for one worker.

    The tracker itself is passive; the JobTracker drives it by launching
    tasks into free slots on heartbeats.  Occupancy invariants (never more
    running tasks than slots) are asserted here so scheduler bugs surface
    as exceptions, not silently-wrong results.
    """

    def __init__(self, tracker_id: int, map_slots: int, reduce_slots: int) -> None:
        self.tracker_id = tracker_id
        self.map_slots = map_slots
        self.reduce_slots = reduce_slots
        # Launch-ordered (dict, not set): Task hashes by identity, so set
        # iteration order would vary run-to-run — and kill_tracker's loss
        # handling iterates this to re-queue attempts (DT101).
        self.running: Dict[Task, None] = {}
        # Free counts are plain maintained ints, not ``slots - running``
        # properties: the quiescence tests and wake scans read them once
        # per tracker per event, which is exactly the per-event overhead
        # the loaded-trace fast path must not pay in property dispatch.
        self.free_map_slots = map_slots
        self.free_reduce_slots = reduce_slots
        self.alive = True

    @property
    def _running_maps(self) -> int:
        return self.map_slots - self.free_map_slots

    @property
    def _running_reduces(self) -> int:
        return self.reduce_slots - self.free_reduce_slots

    # repro: budget O(1)
    def free_slots(self, kind: TaskKind) -> int:
        # Identity test instead of the ``uses_map_slot`` enum property:
        # called once per kind per heartbeat/assignment round.
        return self.free_map_slots if kind is not TaskKind.REDUCE else self.free_reduce_slots

    # repro: budget O(1)
    def occupy(self, task: Task) -> None:
        """Place a task into a slot; raises if no slot of its kind is free."""
        if not self.alive:
            raise RuntimeError(f"tracker {self.tracker_id} is dead")
        if task.kind is not TaskKind.REDUCE:
            if self.free_map_slots <= 0:
                raise RuntimeError(f"tracker {self.tracker_id}: map slots oversubscribed")
            self.free_map_slots -= 1
        else:
            if self.free_reduce_slots <= 0:
                raise RuntimeError(f"tracker {self.tracker_id}: reduce slots oversubscribed")
            self.free_reduce_slots -= 1
        self.running[task] = None
        task.tracker_id = self.tracker_id

    # repro: budget O(1)
    def release(self, task: Task) -> None:
        """Free the slot a finished (or killed) task occupied."""
        self.running.pop(task, None)
        if task.kind is not TaskKind.REDUCE:
            self.free_map_slots += 1
        else:
            self.free_reduce_slots += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TaskTracker({self.tracker_id}, maps {self._running_maps}/{self.map_slots}, "
            f"reduces {self._running_reduces}/{self.reduce_slots})"
        )
