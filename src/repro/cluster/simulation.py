"""High-level simulation driver: workflows in, evaluation stats out.

:class:`ClusterSimulation` wires the engine, JobTracker, metrics collector
and a submission path together:

* ``submission="oozie"`` — the baseline stack: an Oozie-lite coordinator
  submits wjobs as they become ready; the scheduler sees independent jobs
  (plus whatever workflow attributes, like deadlines, it chooses to read).
* ``submission="woha"`` — the WOHA stack: each workflow is submitted with a
  client-computed scheduling plan and a map-only submitter job that
  materialises wjobs on slaves.

The ``planner`` callable is invoked at submission time with
``(workflow, total_slots)`` — exactly the information a WOHA client gets
from the master — and returns the plan object shipped with the
configuration.  :func:`repro.core.client.make_planner` builds the paper's
progress-based planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.analysis.contracts import ContractChecker, ContractMonitor
from repro.cluster.config import ClusterConfig
from repro.cluster.jobtracker import JobTracker
from repro.events import Simulator
from repro.metrics.collector import MetricsCollector
from repro.metrics.report import deadline_miss_ratio, max_tardiness, total_tardiness
from repro.oozie import OozieCoordinator
from repro.schedulers.base import WorkflowScheduler
from repro.trace import DecisionTracer
from repro.workflow.model import Workflow

__all__ = ["WorkflowStats", "SimulationResult", "ClusterSimulation"]

Planner = Callable[[Workflow, int], object]


@dataclass(frozen=True)
class WorkflowStats:
    """Completion summary for one workflow."""

    name: str
    submit_time: float
    completion_time: float
    deadline: Optional[float]

    @property
    def workspan(self) -> float:
        """Completion minus submission — the Fig 11 metric."""
        return self.completion_time - self.submit_time

    @property
    def tardiness(self) -> float:
        """``max(0, completion - deadline)``; 0 for best-effort workflows."""
        if self.deadline is None:
            return 0.0
        return max(0.0, self.completion_time - self.deadline)

    @property
    def met_deadline(self) -> bool:
        """True when the workflow finished by its deadline (or has none)."""
        return self.deadline is None or self.completion_time <= self.deadline


@dataclass
class SimulationResult:
    """Everything a bench or test wants from one simulation run."""

    stats: Dict[str, WorkflowStats]
    metrics: MetricsCollector
    makespan: float
    events_processed: int
    #: The decision tracer, when the run was started with ``trace=``.
    tracer: Optional[DecisionTracer] = None
    #: The contract checker, when the run was started with ``contracts=``.
    contracts: Optional[ContractChecker] = None

    @property
    def miss_ratio(self) -> float:
        return deadline_miss_ratio(self.stats.values())

    @property
    def max_tardiness(self) -> float:
        return max_tardiness(self.stats.values())

    @property
    def total_tardiness(self) -> float:
        return total_tardiness(self.stats.values())

    def workspan(self, workflow_name: str) -> float:
        return self.stats[workflow_name].workspan

    @property
    def utilization(self) -> float:
        return self.metrics.utilization()


class ClusterSimulation:
    """One simulated cluster run.

    Args:
        config: cluster sizing/timing.
        scheduler: the Workflow Scheduler policy (a fresh instance per run;
            schedulers hold queue state).
        submission: ``"oozie"`` or ``"woha"`` (see module docstring).
        planner: WOHA-mode plan generator, called at each workflow's
            submission time.  Ignored in oozie mode.
        trace: decision tracing (:mod:`repro.trace`).  ``False`` (default)
            disables it; ``True`` attaches an unbounded
            :class:`~repro.trace.DecisionTracer`; an ``int`` attaches a
            ring buffer of that capacity; a ready-made tracer instance is
            used as given.  Tracing never changes scheduling decisions.
        contracts: runtime invariant checking
            (:mod:`repro.analysis.contracts`).  ``False`` (default)
            disables it; ``True`` attaches a fresh
            :class:`~repro.analysis.contracts.ContractChecker`; a
            ready-made checker is used as given.  Checks validate shipped
            plans, prerequisite-respecting dispatch and (for the WOHA
            scheduler) Double Skip List consistency on every queue
            mutation; like tracing they never change a decision, and with
            a tracer attached their assertion counts land in the same
            counter table under the ``contracts`` scope.
    """

    def __init__(
        self,
        config: ClusterConfig,
        scheduler: WorkflowScheduler,
        submission: str = "oozie",
        planner: Optional[Planner] = None,
        duration_sampler_factory: Optional[Callable] = None,
        trace: Union[bool, int, DecisionTracer] = False,
        contracts: Union[bool, ContractChecker] = False,
    ) -> None:
        if submission not in ("oozie", "woha"):
            raise ValueError(f"unknown submission mode {submission!r}")
        self.config = config
        self.submission = submission
        self.planner = planner
        self.sim = Simulator()
        self.jobtracker = JobTracker(
            self.sim, config, scheduler, duration_sampler_factory=duration_sampler_factory
        )
        self.metrics = MetricsCollector(config)
        self.jobtracker.add_listener(self.metrics)
        self.tracer: Optional[DecisionTracer] = None
        if trace:
            if isinstance(trace, DecisionTracer):
                self.tracer = trace
            else:
                self.tracer = DecisionTracer(capacity=None if trace is True else int(trace))
            scheduler.attach_tracer(self.tracer)
            self.jobtracker.attach_tracer(self.tracer)
        self.contracts: Optional[ContractChecker] = None
        if contracts:
            self.contracts = contracts if isinstance(contracts, ContractChecker) else ContractChecker()
            if self.tracer is not None:
                # Mirror assertion counters into the decision trace so one
                # counter table covers both instrumentation layers.
                self.contracts.attach_tracer(self.tracer)
            scheduler.attach_contracts(self.contracts)
            monitor = ContractMonitor(self.contracts)
            monitor.bind(self.jobtracker)
            self.jobtracker.add_listener(monitor)
        self.oozie: Optional[OozieCoordinator] = None
        if submission == "oozie":
            self.oozie = OozieCoordinator(self.sim, self.jobtracker)
        self._workflows: List[Workflow] = []
        # Maintained from the workflow-completed listener hook so the
        # heartbeat run loop's completion check is O(1) instead of a scan
        # over every WorkflowInProgress.  ``_stop_when_done`` arms the hook
        # (finite-heartbeat runs only) to halt the engine at completion.
        self._completed_workflows = 0
        self._stop_when_done = False
        self.jobtracker.add_listener(self)

    def add_workflow(self, workflow: Workflow) -> None:
        """Queue a workflow for submission at its ``submit_time``."""
        self._workflows.append(workflow)
        self.sim.schedule(workflow.submit_time, self._submit, workflow)

    def add_workflows(self, workflows: Iterable[Workflow]) -> None:
        for workflow in workflows:
            self.add_workflow(workflow)

    def _submit(self, workflow: Workflow) -> None:
        if self.submission == "woha":
            plan = None
            if self.planner is not None:
                # The client queries the master for the system slot count
                # and computes the plan locally (paper steps a-f).
                plan = self.planner(workflow, self.jobtracker.total_slots)  # repro: calls[repro.core.client.make_planner.planner]
                if self.contracts is not None and hasattr(plan, "entries"):
                    # Algorithm 1 monotonicity, checked where the client
                    # would check it: at plan generation time.
                    self.contracts.check_plan(plan)
            self.jobtracker.submit_workflow(workflow, plan=plan, use_submitter=True)
        else:
            self.oozie.submit_workflow(workflow)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> SimulationResult:
        """Run to completion (or ``until``) and summarise."""
        self.jobtracker.start_heartbeats()
        # With periodic heartbeats the event queue may never drain (without
        # quiescent parking, trackers re-arm forever), so stop once all
        # workflows have completed.  Rather than stepping one event at a
        # time from Python and re-checking, run the engine's fused kernel
        # and have the completion hook request the stop the moment the last
        # workflow finishes — no further event fires, exactly like the
        # per-event check.  The infinite-interval branch must NOT stop at
        # completion: its queue drains naturally, and events scheduled past
        # the last completion (e.g. outage injections) still fire there.
        if self.config.heartbeat_interval == float("inf"):
            self.sim.run(until=until, max_events=max_events)
        else:
            if not self._all_done():
                self._stop_when_done = True
                try:
                    self.sim.run(until=until, max_events=max_events)
                finally:
                    self._stop_when_done = False
            if until is not None:
                self.sim.advance_to(until)
        makespan = max(
            (wip.completion_time for wip in self.jobtracker.workflows.values()
             if wip.completion_time is not None),
            default=self.sim.now,
        )
        stats = {
            wip.name: WorkflowStats(
                name=wip.name,
                submit_time=wip.submit_time,
                completion_time=wip.completion_time if wip.completion_time is not None else float("inf"),
                deadline=wip.deadline,
            )
            for wip in self.jobtracker.workflows.values()
        }
        if self.tracer is not None:
            self.metrics.aggregate_counters(self.tracer)
        elif self.contracts is not None:
            # With a tracer the contract counters arrive mirrored through
            # it; aggregating the checker too would double-count them.
            self.metrics.aggregate_counters(self.contracts)
        return SimulationResult(
            stats=stats,
            metrics=self.metrics,
            makespan=makespan,
            events_processed=self.sim.processed_events,
            tracer=self.tracer,
            contracts=self.contracts,
        )

    def on_workflow_completed(self, wip, now: float) -> None:
        """JobTracker listener hook (fires exactly once per workflow)."""
        self._completed_workflows += 1
        if self._stop_when_done and self._all_done():
            self.sim.request_stop()

    def _all_done(self) -> bool:
        # Counting completions is equivalent to scanning for a None
        # completion_time: the JobTracker fires the completion hook exactly
        # once per WorkflowInProgress, when it sets completion_time.
        submitted = len(self.jobtracker.workflows)
        return submitted == len(self._workflows) and self._completed_workflows == submitted
