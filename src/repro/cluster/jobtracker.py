"""The JobTracker: Hadoop-1's master node.

Responsibilities mirrored from Hadoop-1.2.1 + WOHA's extensions:

* accept workflow and job submissions, hand out unique ids;
* on each heartbeat, ask the pluggable Workflow Scheduler for tasks to fill
  the reporting tracker's free slots;
* track task completions, free slots, advance job/workflow state;
* (WOHA mode) hold each workflow's scheduling plan, run the map-only
  submitter job, and unlock submitter tasks as prerequisites finish.

The JobTracker deliberately performs **no workflow analysis** — that is the
paper's core design constraint (§III-A).  Plans arrive pre-computed from
clients; dependency bookkeeping is O(edges) counter decrements.
"""

from __future__ import annotations

import itertools
import math
from bisect import bisect_left, insort
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Union

from repro.analysis.annotations import hot_path

from repro.cluster.config import ClusterConfig
from repro.cluster.job import JobInProgress, SubmitterJob
from repro.cluster.tasks import Task, TaskKind
from repro.cluster.tasktracker import TaskTracker
from repro.events import Simulator
from repro.schedulers.base import WorkflowScheduler
from repro.trace import NULL_TRACER, DecisionTracer, NullTracer
from repro.workflow.model import Workflow

__all__ = ["WorkflowInProgress", "JobTracker"]


class WorkflowInProgress:
    """Master-side runtime state of one submitted workflow.

    Attributes:
        definition: the immutable :class:`Workflow`.
        wf_id: JobTracker-assigned unique id.
        plan: the scheduling plan shipped by the client (WOHA mode), opaque
            to the JobTracker itself; the Workflow Scheduler interprets it.
        scheduled_tasks: the *true progress* ``rho_i`` of §IV-B — wjob tasks
            launched so far (submitter tasks do not count; they are not part
            of the plan's task population).
    """

    def __init__(self, definition: Workflow, wf_id: str, submit_time: float) -> None:
        self.definition = definition
        self.wf_id = wf_id
        self.submit_time = submit_time
        self.plan = None  # type: object
        self.submitter: Optional[SubmitterJob] = None
        self.jobs: Dict[str, JobInProgress] = {}
        self.completed: Set[str] = set()
        self.pending_prereqs: Dict[str, Set[str]] = {
            job.name: set(job.prerequisites) for job in definition.jobs
        }
        self.scheduled_tasks = 0
        self.completion_time: Optional[float] = None
        # Incremental readiness/activity tracking (DESIGN.md §10): the
        # ready set is a sorted list of topological indexes maintained on
        # prerequisite completion and submission, and active jobs live in
        # an insertion-ordered dict — so ready_wjobs()/active_jobs() stop
        # rescanning the whole workflow per call.
        order = definition.topological_order()
        self._topo_index: Dict[str, int] = {name: i for i, name in enumerate(order)}
        self._ready_indexes: List[int] = [
            i for i, name in enumerate(order) if not self.pending_prereqs[name]
        ]
        self._active_jobs: Dict[str, JobInProgress] = {}

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def deadline(self) -> Optional[float]:
        return self.definition.deadline

    @property
    def done(self) -> bool:
        return len(self.completed) == len(self.definition)

    @property
    def total_tasks(self) -> int:
        return self.definition.total_tasks

    def ready_wjobs(self) -> List[str]:
        """Wjobs whose prerequisites have all finished and which are not yet
        submitted, in the workflow's deterministic topological order."""
        order = self.definition.topological_order()
        return [order[i] for i in self._ready_indexes]

    def active_jobs(self) -> List[JobInProgress]:
        """Submitted-but-unfinished wjobs, submission-ordered."""
        return list(self._active_jobs.values())

    # -- incremental bookkeeping (called by the JobTracker) ----------------

    def _register_job(self, name: str, jip: JobInProgress) -> None:
        """A wjob was submitted: it leaves the ready set and becomes active."""
        self.jobs[name] = jip
        self._active_jobs[name] = jip
        idx = self._topo_index[name]
        pos = bisect_left(self._ready_indexes, idx)
        if pos < len(self._ready_indexes) and self._ready_indexes[pos] == idx:
            del self._ready_indexes[pos]

    def _mark_ready(self, name: str) -> None:
        """``name``'s last prerequisite finished: it joins the ready set."""
        if name not in self.jobs:
            insort(self._ready_indexes, self._topo_index[name])

    def _mark_job_completed(self, name: str) -> None:
        self.completed.add(name)
        self._active_jobs.pop(name, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WorkflowInProgress({self.name!r}, {len(self.completed)}/{len(self.definition)} jobs, "
            f"rho={self.scheduled_tasks})"
        )


class JobTracker:
    """The master node.

    Args:
        sim: the discrete-event engine everything runs on.
        config: cluster sizing/timing.
        scheduler: the Workflow Scheduler policy to consult.

    Listener objects registered via :meth:`add_listener` receive the hooks
    they define out of: ``on_task_launch``, ``on_task_complete``,
    ``on_wjob_submitted``, ``on_job_completed``, ``on_workflow_submitted``,
    ``on_workflow_completed``.  Metrics collectors and the Oozie-lite
    coordinator are both plain listeners.
    """

    def __init__(
        self,
        sim: Simulator,
        config: ClusterConfig,
        scheduler: WorkflowScheduler,
        duration_sampler_factory: Optional[Callable] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.scheduler = scheduler
        # Optional per-job actual-duration override (estimation-error
        # ablation); plans always see the declared estimates.
        self.duration_sampler_factory = duration_sampler_factory
        self.trackers: List[TaskTracker] = [
            TaskTracker(i, config.map_slots_per_node, config.reduce_slots_per_node)
            for i in range(config.num_nodes)
        ]
        self.workflows: Dict[str, WorkflowInProgress] = {}  # by workflow name
        self.jobs: List[JobInProgress] = []  # submission order, all kinds
        self._job_seq = itertools.count(1)
        self._wf_seq = itertools.count(1)
        self._free_maps = config.total_map_slots
        self._free_reduces = config.total_reduce_slots
        self._rr_pointer = 0  # round-robin start for tracker selection
        # Free-tracker rings: bit i is set iff trackers[i] is alive with a
        # free slot of the pool.  _pick_tracker reads the round-robin
        # pointer's cyclic successor with two lowest-set-bit probes instead
        # of an O(n) scan; bits are re-derived on every slot transition by
        # _update_free_mask.  Two flat ints (not a bool-keyed dict): the
        # mask updates run twice per task lifetime and the wake scan reads
        # both masks per completion.
        full_mask = (1 << config.num_nodes) - 1
        self._free_mask_map = full_mask if config.map_slots_per_node > 0 else 0
        self._free_mask_reduce = full_mask if config.reduce_slots_per_node > 0 else 0
        self._listeners: List[object] = []
        # Per-hook pre-bound listener callables (built in add_listener) so
        # _notify dispatches without per-event getattr probing.
        self._hook_listeners: Dict[str, List[Callable]] = {hook: [] for hook in self._HOOKS}
        self._in_round = False
        # Quiescent-heartbeat state (DESIGN.md §10): ids of trackers whose
        # periodic timer is parked (insertion-ordered for deterministic
        # wake-ups), and each tracker's phase anchor — the time its last
        # tick fired — so wakes re-align to the original tick grid.
        # Parking is only sound alongside eager heartbeats, where every
        # periodic tick is provably a no-op (see DESIGN.md §10).
        self._hb_quiescent = (
            config.quiescent_heartbeats
            and config.eager_heartbeats
            and config.heartbeat_interval != float("inf")
        )
        self._parked: Dict[int, None] = {}
        # Bit i set iff trackers[i] is parked — mirrors ``_parked`` so the
        # wake scan can prove "nothing to wake" with one AND instead of
        # iterating the parked set per state change.
        self._parked_mask = 0
        self._hb_anchor: List[float] = [0.0] * config.num_nodes
        # Unfinished wjobs registered via submit_wjob (submitters excluded),
        # maintained on submission/completion transitions.
        self._wjob_running = 0
        self.speculator = None  # optional SpeculationManager
        self.tracer: Union[DecisionTracer, NullTracer] = NULL_TRACER
        # Flat mirror of ``tracer.enabled`` so the per-launch/per-complete
        # guards cost one attribute read instead of two (null-object
        # indirection priced at zero when tracing is off).
        self._tracing = False
        # Free-up timestamps per slot pool (True = map pool), consumed
        # FIFO by launches to derive slot-idle ("assignment latency")
        # counters.  Only maintained while a tracer is attached.
        self._free_since: Dict[bool, Deque[float]] = {True: deque(), False: deque()}
        scheduler.bind(self)

    def attach_speculator(self, speculator: object) -> None:
        """Enable speculative execution (see :mod:`repro.cluster.speculation`)."""
        self.speculator = speculator

    def attach_tracer(self, tracer: Union[DecisionTracer, NullTracer]) -> None:
        """Record decision/slot events into ``tracer`` (and via the
        scheduler, which gets the same tracer from ClusterSimulation).

        The tracer is also registered as a listener so workflow lifecycle
        events land in the same log.
        """
        self.tracer = tracer
        self._tracing = tracer.enabled
        if tracer.enabled:
            self.add_listener(tracer)

    # -- listeners ---------------------------------------------------------

    #: Every hook _notify can dispatch; add_listener pre-binds per hook.
    _HOOKS = (
        "on_task_launch",
        "on_task_complete",
        "on_task_lost",
        "on_wjob_submitted",
        "on_job_completed",
        "on_workflow_submitted",
        "on_workflow_completed",
    )

    def add_listener(self, listener: object) -> None:
        """Register an event listener (metrics, Oozie, post-mortem, ...)."""
        self._listeners.append(listener)
        for hook in self._HOOKS:
            fn = getattr(listener, hook, None)
            if fn is not None:
                self._hook_listeners[hook].append(fn)

    @hot_path
    # repro: budget O(1)
    def _notify(self, hook: str, *args) -> None:
        # Listeners are a fixed config-time set (tracer, Oozie, metrics,
        # contract monitor), not a function of the workflow count; the
        # per-hook bound-method lists are built once in add_listener so
        # dispatch does no per-event getattr probing.
        for fn in self._hook_listeners[hook]:  # repro: allow[DT203]
            fn(*args)

    # -- cluster introspection ----------------------------------------------

    @property
    def total_slots(self) -> int:
        """What a WOHA client gets when it asks for the system slot count."""
        return self.config.total_slots

    def free_slots(self, kind: TaskKind) -> int:
        """Cluster-wide free slots of the given kind."""
        return self._free_maps if kind.uses_map_slot else self._free_reduces

    # repro: budget O(1)
    def running_wjob_count(self) -> int:
        """Unfinished wjobs currently registered (submitter jobs excluded)."""
        return self._wjob_running

    # -- submission paths ----------------------------------------------------

    def submit_workflow(self, workflow: Workflow, plan: object = None, use_submitter: bool = True) -> WorkflowInProgress:
        """Register a workflow's configuration (WOHA client path, steps e-i).

        With ``use_submitter`` (WOHA mode) a map-only submitter job is
        created whose tasks, once run on slaves, submit the wjobs; root
        wjobs are unlocked immediately.  With ``use_submitter=False`` the
        caller (Oozie-lite) submits wjobs itself via :meth:`submit_wjob`.
        """
        if workflow.name in self.workflows:
            raise ValueError(f"workflow name {workflow.name!r} already submitted")
        wf_id = f"wf_{next(self._wf_seq):06d}"
        wip = WorkflowInProgress(workflow, wf_id, self.sim.now)
        wip.plan = plan
        self.workflows[workflow.name] = wip
        self._notify("on_workflow_submitted", wip, self.sim.now)
        self.scheduler.on_workflow_submitted(wip, self.sim.now)
        if use_submitter:
            submitter = SubmitterJob(
                job_id=f"job_{next(self._job_seq):06d}",
                workflow_name=workflow.name,
                wjob_names=workflow.topological_order(),
                submit_time=self.sim.now,
                task_duration=self.config.submit_task_duration,
            )
            wip.submitter = submitter
            self.jobs.append(submitter)
            for name in workflow.roots():
                submitter.unlock(name)
            self.scheduler.on_wjob_submitted(submitter, self.sim.now)
        self._mark_scheduler_dirty()
        self.schedule_round()
        return wip

    def submit_wjob(self, workflow_name: str, wjob_name: str) -> JobInProgress:
        """Register one wjob as a runnable Hadoop job (submitter / Oozie path)."""
        wip = self.workflows[workflow_name]
        if wjob_name in wip.jobs:
            raise ValueError(f"{workflow_name}/{wjob_name} submitted twice")
        if wip.pending_prereqs[wjob_name]:
            raise ValueError(
                f"{workflow_name}/{wjob_name} submitted with unfinished prerequisites "
                f"{sorted(wip.pending_prereqs[wjob_name])}"
            )
        wjob = wip.definition.job(wjob_name)
        sampler = None
        if self.duration_sampler_factory is not None:
            # Injected estimation-noise hook (repro.noise); samplers are
            # seeded there, which is the deal DT102's allow-list encodes.
            sampler = self.duration_sampler_factory(wjob)  # repro: allow[DT202]
        jip = JobInProgress(
            job_id=f"job_{next(self._job_seq):06d}",
            wjob=wjob,
            workflow_name=workflow_name,
            submit_time=self.sim.now,
            duration_sampler=sampler,
        )
        wip._register_job(wjob_name, jip)
        self.jobs.append(jip)
        self._wjob_running += 1
        self._notify("on_wjob_submitted", jip, self.sim.now)
        self.scheduler.on_wjob_submitted(jip, self.sim.now)
        self._mark_scheduler_dirty()
        self.schedule_round()
        return jip

    # -- heartbeats & assignment ---------------------------------------------

    def start_heartbeats(self) -> None:
        """Begin each tracker's periodic heartbeat loop.

        Trackers are staggered across the first interval so the master does
        not see all heartbeats at the same instant (as in a real cluster).
        An infinite ``heartbeat_interval`` disables the periodic loop —
        useful for large sweeps where ``eager_heartbeats`` already covers
        every scheduling opportunity.
        """
        interval = self.config.heartbeat_interval
        if interval == float("inf"):
            return
        for tracker in self.trackers:
            offset = interval * (tracker.tracker_id + 1) / len(self.trackers)
            tick_time = self.sim.now + offset
            self._hb_anchor[tracker.tracker_id] = tick_time
            self.sim.schedule(tick_time, self._heartbeat_tick, tracker)

    # repro: budget O(n)
    def _heartbeat_tick(self, tracker: TaskTracker) -> None:
        if not tracker.alive:
            # The chain dies with the tracker; revive_tracker re-arms it.
            return
        config = self.config
        if config.batched_assignment:
            launched = self._heartbeat_batched(tracker)
        else:
            launched = self.heartbeat(tracker)
        tid = tracker.tracker_id
        sim = self.sim
        self._hb_anchor[tid] = sim.now
        parked = self._parked
        if self._hb_quiescent and not launched and self._tracker_quiescent(tracker):
            # Park the timer: under eager heartbeats this tick was a no-op
            # and every future one would be too, until a wake condition
            # (_mark_scheduler_dirty / a slot freeing) re-arms it on the
            # same phase grid.
            parked[tid] = None
            self._parked_mask |= 1 << tid
            return
        parked.pop(tid, None)
        self._parked_mask &= ~(1 << tid)
        sim.schedule(sim.now + config.heartbeat_interval, self._heartbeat_tick, tracker)

    # repro: budget O(1)
    def _tracker_quiescent(self, tracker: TaskTracker) -> bool:
        """Park test: every slot kind is full or provably unservable."""
        scheduler = self.scheduler
        if tracker.free_map_slots > 0 and scheduler.maybe_map:
            return False
        return not (tracker.free_reduce_slots > 0 and scheduler.maybe_reduce)

    # repro: budget O(log n)
    def heartbeat(self, tracker: TaskTracker) -> List[Task]:
        """One tracker reports in; fill its free slots from the scheduler."""
        launched: List[Task] = []
        scheduler = self.scheduler
        now = self.sim.now
        for kind in (TaskKind.MAP, TaskKind.REDUCE):
            while tracker.free_slots(kind) > 0:
                if not scheduler.has_runnable(kind):
                    # A prior select_task proved idle and nothing changed
                    # since; asking again could not answer differently.
                    break
                task = scheduler.select_task(kind, now)
                if task is None:
                    scheduler.note_idle(kind)
                    break
                self._launch(task, tracker)
                launched.append(task)
        return launched

    # repro: budget O(n)
    def _heartbeat_batched(self, tracker: TaskTracker) -> List[Task]:
        """Batched form of :meth:`heartbeat`: one ``select_tasks`` round per
        kind fills every free slot of this tracker
        (``ClusterConfig.batched_assignment``, DESIGN.md §11).  Decisions
        and traces are byte-identical to the one-launch-per-call loop —
        within a tick nothing but our own launches changes scheduler state.
        """
        launched: List[Task] = []
        scheduler = self.scheduler
        now = self.sim.now

        def _launch_here(task: Task) -> None:
            self._launch(task, tracker)
            launched.append(task)

        # Unrolled over the two kinds with direct slot/hint attribute reads:
        # this runs once per non-parked tick, and the common loaded-cluster
        # outcome is "nothing to do" — the probes must cost two attribute
        # reads, not method dispatch per kind.
        free = tracker.free_map_slots
        if free > 0 and scheduler.maybe_map:
            if scheduler.select_tasks(TaskKind.MAP, now, free, _launch_here) < free:
                scheduler.maybe_map = False
        free = tracker.free_reduce_slots
        if free > 0 and scheduler.maybe_reduce:
            if scheduler.select_tasks(TaskKind.REDUCE, now, free, _launch_here) < free:
                scheduler.maybe_reduce = False
        return launched

    @hot_path
    # repro: budget O(n)
    def _wake_parked(self) -> None:
        """Re-arm parked heartbeat timers whose tracker could now be served.

        A woken timer is re-aligned to the tracker's original phase grid —
        the smallest ``anchor + k * interval`` strictly after ``now`` — so
        tick times match the never-parked reference path exactly.
        """
        # A parked tracker must wake iff some kind has both a free slot on
        # it and a maybe-runnable task.  The free-slot rings already encode
        # "alive with a free slot of the pool" per tracker bit, so the
        # per-tracker quiescence probes collapse to one bit test against
        # the union of the servable pools' masks (parked order preserved).
        scheduler = self.scheduler
        mask = 0
        if scheduler.maybe_map:
            mask |= self._free_mask_map
        if scheduler.maybe_reduce:
            mask |= self._free_mask_reduce
        mask &= self._parked_mask
        if not mask:
            return
        sim = self.sim
        now = sim.now
        interval = self.config.heartbeat_interval
        parked = self._parked
        hb_anchor = self._hb_anchor
        trackers = self.trackers
        tick_cb = self._heartbeat_tick
        if not mask & (mask - 1):
            # Exactly one wakeable tracker (the common case after a single
            # completion): skip the parked-order scan — order is moot.
            tid = mask.bit_length() - 1
            del parked[tid]
            self._parked_mask &= ~mask
            anchor = hb_anchor[tid]
            tick = anchor + (int((now - anchor) / interval) + 1) * interval
            if tick <= now:
                tick += interval
            sim.schedule(tick, tick_cb, trackers[tid])
            return
        # Multiple wake-ups: walk in parked (insertion) order so timers that
        # land on the same tick instant keep their established FIFO order.
        woken = [tid for tid in parked if mask >> tid & 1]
        for tid in woken:
            del parked[tid]
            self._parked_mask &= ~(1 << tid)
            anchor = hb_anchor[tid]
            tick = anchor + (math.floor((now - anchor) / interval) + 1) * interval
            if tick <= now:
                tick += interval
            sim.schedule(tick, tick_cb, trackers[tid])

    # repro: budget O(n)
    def _mark_scheduler_dirty(self) -> None:
        """A state change could make ``select_task`` answer differently:
        refresh the scheduler's runnability hints and wake parked timers."""
        self.scheduler.note_state_change()
        if self._parked:
            self._wake_parked()

    def notify_plan_installed(self) -> None:
        """A scheduling plan was (re)installed mid-run (replanning path)."""
        self._mark_scheduler_dirty()

    def schedule_round(self) -> None:
        """Cluster-wide assignment sweep (out-of-band heartbeat path).

        Because no scheduler here is locality-aware, one ``None`` answer
        from the scheduler means no tracker can be served, so the sweep is
        O(assignments), not O(trackers x assignments).
        """
        if not self.config.eager_heartbeats or self._in_round:
            # Re-entrant calls (a submission triggered from within a
            # completion) fold into the outer round's loop.
            return
        self._in_round = True
        try:
            if self.config.batched_assignment and self.speculator is None:
                # Speculative backups piggyback on proven-idle answers the
                # unbatched loop surfaces per call; with a speculator
                # attached the reference loop below stays authoritative.
                self._round_batched()
                return
            for kind in (TaskKind.MAP, TaskKind.REDUCE):
                while self.free_slots(kind) > 0:
                    task = self.scheduler.select_task(kind, self.sim.now)
                    if task is None:
                        # A proven-idle answer: parked heartbeat timers may
                        # reuse it until the next state change.
                        self.scheduler.note_idle(kind)
                        if self.speculator is not None:
                            # Idle slots may back up stragglers (Hadoop's
                            # speculative execution kicks in when the regular
                            # scheduler has nothing to assign).
                            task = self.speculator.select_backup(kind, self.sim.now)
                    if task is None:
                        break
                    tracker = self._pick_tracker(kind)
                    self._launch(task, tracker)
        finally:
            self._in_round = False

    # repro: budget O(n)
    def _round_batched(self) -> None:
        """Batched form of :meth:`schedule_round`: one ``select_tasks``
        round per kind fills every free slot cluster-wide, each launch
        landing on the round-robin tracker the unbatched sweep would have
        picked (DESIGN.md §11).  Unlike the heartbeat path this must *not*
        gate on ``has_runnable`` — the reference sweep always asks the
        scheduler once per kind, and that fruitless ask emits an idle
        decision event the batched trace must reproduce.
        """
        scheduler = self.scheduler
        now = self.sim.now
        # Untraced runs may reuse proven-idle hints here: skipping the call
        # launches nothing (the hint being False means a prior walk proved
        # idle and no state change followed) and note_idle would only
        # re-write the already-False flag.  Traced runs must still ask, to
        # emit the idle decision event the reference sweep records.
        # Unrolled over the two kinds with direct pool/hint reads — this is
        # the once-per-completion sweep on the loaded-trace hot path.
        tracing = self._tracing
        free = self._free_maps
        if free > 0 and (tracing or scheduler.maybe_map):

            def _launch_map(task: Task) -> None:
                self._launch(task, self._pick_tracker(TaskKind.MAP))

            if scheduler.select_tasks(TaskKind.MAP, now, free, _launch_map) < free:
                scheduler.maybe_map = False
        free = self._free_reduces
        if free > 0 and (tracing or scheduler.maybe_reduce):

            def _launch_reduce(task: Task) -> None:
                self._launch(task, self._pick_tracker(TaskKind.REDUCE))

            if scheduler.select_tasks(TaskKind.REDUCE, now, free, _launch_reduce) < free:
                scheduler.maybe_reduce = False
        return
    # repro: budget O(log n)
    def _pick_tracker(self, kind: TaskKind) -> TaskTracker:
        """Round-robin over trackers with a free slot of ``kind``.

        The free-tracker ring is a bitmask over tracker ids; the cyclic
        successor of the round-robin pointer falls out of two word-packed
        lowest-set-bit probes (first set bit at or after the pointer, else
        wrap to the lowest set bit) instead of an O(n) probe loop.
        """
        mask = self._free_mask_map if kind is not TaskKind.REDUCE else self._free_mask_reduce
        if not mask:
            raise RuntimeError("no free slot despite positive cluster-wide count")
        upper = mask >> self._rr_pointer
        if upper:
            tid = self._rr_pointer + ((upper & -upper).bit_length() - 1)
        else:
            tid = (mask & -mask).bit_length() - 1
        trackers = self.trackers
        self._rr_pointer = (tid + 1) % len(trackers)
        return trackers[tid]

    # repro: budget O(1)
    def _update_free_mask(self, tracker: TaskTracker) -> None:
        """Re-derive one tracker's free-ring bits from its slot state."""
        bit = 1 << tracker.tracker_id
        alive = tracker.alive
        if alive and tracker.free_map_slots > 0:
            self._free_mask_map |= bit
        else:
            self._free_mask_map &= ~bit
        if alive and tracker.free_reduce_slots > 0:
            self._free_mask_reduce |= bit
        else:
            self._free_mask_reduce &= ~bit

    # repro: budget O(log n)
    def _launch(self, task: Task, tracker: TaskTracker) -> None:
        sim = self.sim
        now = sim.now
        kind = task.kind
        uses_map = kind is not TaskKind.REDUCE
        tid = tracker.tracker_id
        tracker.occupy(task)
        # Inline one-pool mask maintenance (occupy already decremented the
        # tracker's free count): only the consumed pool's bit can change,
        # and only when the tracker's last slot of that pool just went busy.
        if uses_map:
            self._free_maps -= 1
            if tracker.free_map_slots == 0:
                self._free_mask_map &= ~(1 << tid)
        else:
            self._free_reduces -= 1
            if tracker.free_reduce_slots == 0:
                self._free_mask_reduce &= ~(1 << tid)
        task.launch_time = now
        if self._tracing:
            # Slot-idle gap: seconds since the consumed pool's oldest
            # free-up.  Slots free at simulation start have no recorded
            # free-up, so their first assignment carries wait=None.
            pool = self._free_since[uses_map]
            wait = now - pool.popleft() if pool else None
            self.tracer.incr(self.scheduler.name, "assignments")
            if wait is not None:
                self.tracer.incr(self.scheduler.name, "assign_wait_seconds", wait)
                self.tracer.incr(self.scheduler.name, "assign_wait_samples")
            self.tracer.record(
                "assign",
                now,
                workflow=task.workflow_name,
                task=task.task_id,
                slot_kind=kind.value,
                tracker=tracker.tracker_id,
                wait=wait,
            )
        speculative = task.speculative
        if not speculative:
            wf_name = task.job.workflow_name
            if kind is not TaskKind.SUBMIT and wf_name is not None:
                # Backup attempts duplicate an index already counted in rho.
                self.workflows[wf_name].scheduled_tasks += 1
            self.scheduler.on_task_assigned(task, now)
        self._notify("on_task_launch", task, now)
        task.completion_handle = sim.schedule(
            now + task.duration, self._complete_task, task, tracker
        )

    # -- completion ----------------------------------------------------------

    # repro: budget O(n)
    def _complete_task(self, task: Task, tracker: TaskTracker) -> None:
        now = self.sim.now
        kind = task.kind
        job = task.job
        tid = tracker.tracker_id
        tracker.release(task)
        # The freed pool's ring bit is set unconditionally: the tracker is
        # alive (it just completed a task) and now has >= 1 free slot.
        if kind is not TaskKind.REDUCE:
            self._free_maps += 1
            self._free_mask_map |= 1 << tid
        else:
            self._free_reduces += 1
            self._free_mask_reduce |= 1 << tid
        task.finish_time = now
        if self._tracing:
            self._trace_slot_free(task, now)
        speculator = self.speculator
        if speculator is not None:
            # This attempt committed; retire any sibling attempts first so
            # the logical task is accounted exactly once.
            for loser in speculator.commit(task):
                self._kill_attempt(loser)
        maps_done, job_done = job.on_task_complete(task, now)
        self._notify("on_task_complete", task, now)

        scheduler = self.scheduler
        if kind is TaskKind.SUBMIT:
            # The submitter map task loaded the wjob's jar and initialised
            # its tasks on this slave; the wjob now reaches the master.
            self.submit_wjob(job.workflow_name, task.payload)
            if job_done:
                scheduler.on_job_completed(job, now)
        elif job_done:
            self._on_wjob_completed(job, now)
        # Targeted hint refresh: a mid-phase completion frees a slot but
        # adds no runnable work (pending sets only shrink at launch time),
        # so proven-idle hints stay valid.  New work appears only when the
        # map phase finishes (reduces expose) or the job finishes (unlocks
        # dependents; their submissions mark dirty themselves, but the
        # unlock made submit tasks runnable).  Every scheduler here is
        # work-conserving — select_task returns None only when nothing is
        # runnable — which is what makes the stale-False case impossible.
        if maps_done or job_done:
            scheduler.note_state_change()
        self.schedule_round()
        # Wake parked timers from the POST-round state: the eager round just
        # ended with every kind either slot-saturated or proven idle, so any
        # tracker it leaves wakeable genuinely has a servable free slot.
        # Waking before the round would re-arm timers for slots the round is
        # about to refill — ticks that fire, find nothing (the provable
        # no-op invariant), and re-park, at one queue event apiece.
        if self._parked:
            self._wake_parked()

    def _kill_attempt(self, task: Task) -> None:
        """Retire a running attempt whose logical task is covered elsewhere."""
        if task.completion_handle is not None:
            task.completion_handle.cancel()
        tracker = self.trackers[task.tracker_id]
        tracker.release(task)
        if tracker.alive:
            if task.kind.uses_map_slot:
                self._free_maps += 1
            else:
                self._free_reduces += 1
            if self._tracing:
                self._trace_slot_free(task, self.sim.now)
        self._update_free_mask(tracker)
        task.job.on_attempt_killed(task)
        self._notify("on_task_lost", task, self.sim.now)
        if self._parked:
            # A slot freed on a possibly-parked tracker: wake it if the
            # scheduler may have something for it.
            self._wake_parked()

    def _trace_slot_free(self, task: Task, now: float) -> None:
        """Record a slot returning to the pool (tracer attached only)."""
        uses_map = task.kind.uses_map_slot
        self._free_since[uses_map].append(now)
        self.tracer.incr(self.scheduler.name, "slot_frees")
        self.tracer.record(
            "slot_free",
            now,
            slot_kind="map" if uses_map else "reduce",
            workflow=task.workflow_name,
            free=self._free_maps if uses_map else self._free_reduces,
        )

    # -- failure handling ------------------------------------------------------

    def kill_tracker(self, tracker_id: int) -> List[Task]:
        """A TaskTracker stops heartbeating: Hadoop's node-failure path.

        Running attempts die and are re-queued on their jobs; finished map
        outputs stored on the node are invalidated for still-running jobs
        (their maps re-execute); WOHA submit tasks re-arm.  The node's
        slots leave the capacity pool until :meth:`revive_tracker`.

        Returns the task attempts that were lost.
        """
        tracker = self.trackers[tracker_id]
        if not tracker.alive:
            raise ValueError(f"tracker {tracker_id} is already dead")
        now = self.sim.now
        tracker.alive = False
        # Idle slots leave the pool; a parked timer dies with the tracker
        # (revive_tracker re-arms it).
        self._free_maps -= tracker.free_map_slots
        self._free_reduces -= tracker.free_reduce_slots
        self._update_free_mask(tracker)
        self._parked.pop(tracker_id, None)
        self._parked_mask &= ~(1 << tracker_id)
        lost = list(tracker.running)
        for task in lost:
            if task.completion_handle is not None:
                task.completion_handle.cancel()
            tracker.release(task)
            if self.speculator is not None and self.speculator.has_sibling(task):
                # A backup still covers the index; nothing to re-queue.
                task.job.on_attempt_killed(task)
            else:
                # The index is now uncovered: re-queue it and roll back the
                # single rho increment its original launch made (whichever
                # attempt happened to die last).
                task.job.on_task_lost(task)
                if task.kind is not TaskKind.SUBMIT and task.workflow_name is not None:
                    self.workflows[task.workflow_name].scheduled_tasks -= 1
            self._notify("on_task_lost", task, now)
        # Re-execute completed maps whose intermediate output died with the
        # node (only jobs with unfinished reducers are affected).
        for jip in self.jobs:
            if jip.completed:
                continue
            rerun = jip.invalidate_map_outputs(tracker_id)
            if rerun and jip.workflow_name is not None:
                self.workflows[jip.workflow_name].scheduled_tasks -= rerun
        self._mark_scheduler_dirty()
        self.schedule_round()
        return lost

    def revive_tracker(self, tracker_id: int) -> None:
        """Bring a failed tracker back with empty slots."""
        tracker = self.trackers[tracker_id]
        if tracker.alive:
            raise ValueError(f"tracker {tracker_id} is already alive")
        tracker.alive = True
        self._free_maps += tracker.free_map_slots
        self._free_reduces += tracker.free_reduce_slots
        self._update_free_mask(tracker)
        if self.config.heartbeat_interval != float("inf"):
            self._parked.pop(tracker_id, None)
            self._parked_mask &= ~(1 << tracker_id)
            self.sim.schedule_after(self.config.heartbeat_interval, self._heartbeat_tick, tracker)
        self._mark_scheduler_dirty()
        self.schedule_round()

    def _on_wjob_completed(self, jip: JobInProgress, now: float) -> None:
        wf_name = jip.workflow_name
        if wf_name is None:
            self.scheduler.on_job_completed(jip, now)
            self._notify("on_job_completed", jip, now)
            return
        # Dependency bookkeeping must precede the completion notifications:
        # the Oozie-lite coordinator reacts to `on_job_completed` by asking
        # which wjobs are now ready.
        wip = self.workflows[wf_name]
        wip._mark_job_completed(jip.name)
        self._wjob_running -= 1
        # Unlock dependents.  In WOHA mode the JobTracker holds the
        # topology (it arrived with the configuration) and pokes the
        # submitter job; in Oozie mode only the coordinator (a listener)
        # reacts, preserving the paper's information separation.
        # (sorted: frozenset iteration is hash-ordered, which would make
        # unlock order — and thus entire runs — vary across processes.)
        for dep in sorted(wip.definition.dependents(jip.name)):
            pending = wip.pending_prereqs[dep]
            pending.discard(jip.name)
            if not pending:
                wip._mark_ready(dep)
                if wip.submitter is not None:
                    wip.submitter.unlock(dep)
        self.scheduler.on_job_completed(jip, now)
        self._notify("on_job_completed", jip, now)
        if wip.done and wip.completion_time is None:
            wip.completion_time = now
            self.scheduler.on_workflow_completed(wip, now)
            self._notify("on_workflow_completed", wip, now)
