"""The JobTracker: Hadoop-1's master node.

Responsibilities mirrored from Hadoop-1.2.1 + WOHA's extensions:

* accept workflow and job submissions, hand out unique ids;
* on each heartbeat, ask the pluggable Workflow Scheduler for tasks to fill
  the reporting tracker's free slots;
* track task completions, free slots, advance job/workflow state;
* (WOHA mode) hold each workflow's scheduling plan, run the map-only
  submitter job, and unlock submitter tasks as prerequisites finish.

The JobTracker deliberately performs **no workflow analysis** — that is the
paper's core design constraint (§III-A).  Plans arrive pre-computed from
clients; dependency bookkeeping is O(edges) counter decrements.
"""

from __future__ import annotations

import itertools
import math
from bisect import bisect_left, insort
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Union

from repro.analysis.annotations import hot_path

from repro.cluster.config import ClusterConfig
from repro.cluster.job import JobInProgress, SubmitterJob
from repro.cluster.tasks import Task, TaskKind
from repro.cluster.tasktracker import TaskTracker
from repro.events import Simulator
from repro.schedulers.base import WorkflowScheduler
from repro.trace import NULL_TRACER, DecisionTracer, NullTracer
from repro.workflow.model import Workflow

__all__ = ["WorkflowInProgress", "JobTracker"]


class WorkflowInProgress:
    """Master-side runtime state of one submitted workflow.

    Attributes:
        definition: the immutable :class:`Workflow`.
        wf_id: JobTracker-assigned unique id.
        plan: the scheduling plan shipped by the client (WOHA mode), opaque
            to the JobTracker itself; the Workflow Scheduler interprets it.
        scheduled_tasks: the *true progress* ``rho_i`` of §IV-B — wjob tasks
            launched so far (submitter tasks do not count; they are not part
            of the plan's task population).
    """

    def __init__(self, definition: Workflow, wf_id: str, submit_time: float) -> None:
        self.definition = definition
        self.wf_id = wf_id
        self.submit_time = submit_time
        self.plan = None  # type: object
        self.submitter: Optional[SubmitterJob] = None
        self.jobs: Dict[str, JobInProgress] = {}
        self.completed: Set[str] = set()
        self.pending_prereqs: Dict[str, Set[str]] = {
            job.name: set(job.prerequisites) for job in definition.jobs
        }
        self.scheduled_tasks = 0
        self.completion_time: Optional[float] = None
        # Incremental readiness/activity tracking (DESIGN.md §10): the
        # ready set is a sorted list of topological indexes maintained on
        # prerequisite completion and submission, and active jobs live in
        # an insertion-ordered dict — so ready_wjobs()/active_jobs() stop
        # rescanning the whole workflow per call.
        order = definition.topological_order()
        self._topo_index: Dict[str, int] = {name: i for i, name in enumerate(order)}
        self._ready_indexes: List[int] = [
            i for i, name in enumerate(order) if not self.pending_prereqs[name]
        ]
        self._active_jobs: Dict[str, JobInProgress] = {}

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def deadline(self) -> Optional[float]:
        return self.definition.deadline

    @property
    def done(self) -> bool:
        return len(self.completed) == len(self.definition)

    @property
    def total_tasks(self) -> int:
        return self.definition.total_tasks

    def ready_wjobs(self) -> List[str]:
        """Wjobs whose prerequisites have all finished and which are not yet
        submitted, in the workflow's deterministic topological order."""
        order = self.definition.topological_order()
        return [order[i] for i in self._ready_indexes]

    def active_jobs(self) -> List[JobInProgress]:
        """Submitted-but-unfinished wjobs, submission-ordered."""
        return list(self._active_jobs.values())

    # -- incremental bookkeeping (called by the JobTracker) ----------------

    def _register_job(self, name: str, jip: JobInProgress) -> None:
        """A wjob was submitted: it leaves the ready set and becomes active."""
        self.jobs[name] = jip
        self._active_jobs[name] = jip
        idx = self._topo_index[name]
        pos = bisect_left(self._ready_indexes, idx)
        if pos < len(self._ready_indexes) and self._ready_indexes[pos] == idx:
            del self._ready_indexes[pos]

    def _mark_ready(self, name: str) -> None:
        """``name``'s last prerequisite finished: it joins the ready set."""
        if name not in self.jobs:
            insort(self._ready_indexes, self._topo_index[name])

    def _mark_job_completed(self, name: str) -> None:
        self.completed.add(name)
        self._active_jobs.pop(name, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WorkflowInProgress({self.name!r}, {len(self.completed)}/{len(self.definition)} jobs, "
            f"rho={self.scheduled_tasks})"
        )


class JobTracker:
    """The master node.

    Args:
        sim: the discrete-event engine everything runs on.
        config: cluster sizing/timing.
        scheduler: the Workflow Scheduler policy to consult.

    Listener objects registered via :meth:`add_listener` receive the hooks
    they define out of: ``on_task_launch``, ``on_task_complete``,
    ``on_wjob_submitted``, ``on_job_completed``, ``on_workflow_submitted``,
    ``on_workflow_completed``.  Metrics collectors and the Oozie-lite
    coordinator are both plain listeners.
    """

    def __init__(
        self,
        sim: Simulator,
        config: ClusterConfig,
        scheduler: WorkflowScheduler,
        duration_sampler_factory: Optional[Callable] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.scheduler = scheduler
        # Optional per-job actual-duration override (estimation-error
        # ablation); plans always see the declared estimates.
        self.duration_sampler_factory = duration_sampler_factory
        self.trackers: List[TaskTracker] = [
            TaskTracker(i, config.map_slots_per_node, config.reduce_slots_per_node)
            for i in range(config.num_nodes)
        ]
        self.workflows: Dict[str, WorkflowInProgress] = {}  # by workflow name
        self.jobs: List[JobInProgress] = []  # submission order, all kinds
        self._job_seq = itertools.count(1)
        self._wf_seq = itertools.count(1)
        self._free_maps = config.total_map_slots
        self._free_reduces = config.total_reduce_slots
        self._rr_pointer = 0  # round-robin start for tracker selection
        # Free-tracker rings: bit i is set iff trackers[i] is alive with a
        # free slot of the pool (key True = map pool).  _pick_tracker reads
        # the round-robin pointer's cyclic successor with two lowest-set-bit
        # probes instead of an O(n) scan; bits are re-derived on every slot
        # transition by _update_free_mask.
        full_mask = (1 << config.num_nodes) - 1
        self._free_masks: Dict[bool, int] = {
            True: full_mask if config.map_slots_per_node > 0 else 0,
            False: full_mask if config.reduce_slots_per_node > 0 else 0,
        }
        self._listeners: List[object] = []
        # Per-hook pre-bound listener callables (built in add_listener) so
        # _notify dispatches without per-event getattr probing.
        self._hook_listeners: Dict[str, List[Callable]] = {hook: [] for hook in self._HOOKS}
        self._in_round = False
        # Quiescent-heartbeat state (DESIGN.md §10): ids of trackers whose
        # periodic timer is parked (insertion-ordered for deterministic
        # wake-ups), and each tracker's phase anchor — the time its last
        # tick fired — so wakes re-align to the original tick grid.
        # Parking is only sound alongside eager heartbeats, where every
        # periodic tick is provably a no-op (see DESIGN.md §10).
        self._hb_quiescent = (
            config.quiescent_heartbeats
            and config.eager_heartbeats
            and config.heartbeat_interval != float("inf")
        )
        self._parked: Dict[int, None] = {}
        self._hb_anchor: List[float] = [0.0] * config.num_nodes
        # Unfinished wjobs registered via submit_wjob (submitters excluded),
        # maintained on submission/completion transitions.
        self._wjob_running = 0
        self.speculator = None  # optional SpeculationManager
        self.tracer: Union[DecisionTracer, NullTracer] = NULL_TRACER
        # Free-up timestamps per slot pool (True = map pool), consumed
        # FIFO by launches to derive slot-idle ("assignment latency")
        # counters.  Only maintained while a tracer is attached.
        self._free_since: Dict[bool, Deque[float]] = {True: deque(), False: deque()}
        scheduler.bind(self)

    def attach_speculator(self, speculator: object) -> None:
        """Enable speculative execution (see :mod:`repro.cluster.speculation`)."""
        self.speculator = speculator

    def attach_tracer(self, tracer: Union[DecisionTracer, NullTracer]) -> None:
        """Record decision/slot events into ``tracer`` (and via the
        scheduler, which gets the same tracer from ClusterSimulation).

        The tracer is also registered as a listener so workflow lifecycle
        events land in the same log.
        """
        self.tracer = tracer
        if tracer.enabled:
            self.add_listener(tracer)

    # -- listeners ---------------------------------------------------------

    #: Every hook _notify can dispatch; add_listener pre-binds per hook.
    _HOOKS = (
        "on_task_launch",
        "on_task_complete",
        "on_task_lost",
        "on_wjob_submitted",
        "on_job_completed",
        "on_workflow_submitted",
        "on_workflow_completed",
    )

    def add_listener(self, listener: object) -> None:
        """Register an event listener (metrics, Oozie, post-mortem, ...)."""
        self._listeners.append(listener)
        for hook in self._HOOKS:
            fn = getattr(listener, hook, None)
            if fn is not None:
                self._hook_listeners[hook].append(fn)

    @hot_path
    # repro: budget O(1)
    def _notify(self, hook: str, *args) -> None:
        # Listeners are a fixed config-time set (tracer, Oozie, metrics,
        # contract monitor), not a function of the workflow count; the
        # per-hook bound-method lists are built once in add_listener so
        # dispatch does no per-event getattr probing.
        for fn in self._hook_listeners[hook]:  # repro: allow[DT203]
            fn(*args)  # repro: allow[DT202]

    # -- cluster introspection ----------------------------------------------

    @property
    def total_slots(self) -> int:
        """What a WOHA client gets when it asks for the system slot count."""
        return self.config.total_slots

    def free_slots(self, kind: TaskKind) -> int:
        """Cluster-wide free slots of the given kind."""
        return self._free_maps if kind.uses_map_slot else self._free_reduces

    # repro: budget O(1)
    def running_wjob_count(self) -> int:
        """Unfinished wjobs currently registered (submitter jobs excluded)."""
        return self._wjob_running

    # -- submission paths ----------------------------------------------------

    def submit_workflow(self, workflow: Workflow, plan: object = None, use_submitter: bool = True) -> WorkflowInProgress:
        """Register a workflow's configuration (WOHA client path, steps e-i).

        With ``use_submitter`` (WOHA mode) a map-only submitter job is
        created whose tasks, once run on slaves, submit the wjobs; root
        wjobs are unlocked immediately.  With ``use_submitter=False`` the
        caller (Oozie-lite) submits wjobs itself via :meth:`submit_wjob`.
        """
        if workflow.name in self.workflows:
            raise ValueError(f"workflow name {workflow.name!r} already submitted")
        wf_id = f"wf_{next(self._wf_seq):06d}"
        wip = WorkflowInProgress(workflow, wf_id, self.sim.now)
        wip.plan = plan
        self.workflows[workflow.name] = wip
        self._notify("on_workflow_submitted", wip, self.sim.now)
        self.scheduler.on_workflow_submitted(wip, self.sim.now)
        if use_submitter:
            submitter = SubmitterJob(
                job_id=f"job_{next(self._job_seq):06d}",
                workflow_name=workflow.name,
                wjob_names=workflow.topological_order(),
                submit_time=self.sim.now,
                task_duration=self.config.submit_task_duration,
            )
            wip.submitter = submitter
            self.jobs.append(submitter)
            for name in workflow.roots():
                submitter.unlock(name)
            self.scheduler.on_wjob_submitted(submitter, self.sim.now)
        self._mark_scheduler_dirty()
        self.schedule_round()
        return wip

    def submit_wjob(self, workflow_name: str, wjob_name: str) -> JobInProgress:
        """Register one wjob as a runnable Hadoop job (submitter / Oozie path)."""
        wip = self.workflows[workflow_name]
        if wjob_name in wip.jobs:
            raise ValueError(f"{workflow_name}/{wjob_name} submitted twice")
        if wip.pending_prereqs[wjob_name]:
            raise ValueError(
                f"{workflow_name}/{wjob_name} submitted with unfinished prerequisites "
                f"{sorted(wip.pending_prereqs[wjob_name])}"
            )
        wjob = wip.definition.job(wjob_name)
        sampler = None
        if self.duration_sampler_factory is not None:
            # Injected estimation-noise hook (repro.noise); samplers are
            # seeded there, which is the deal DT102's allow-list encodes.
            sampler = self.duration_sampler_factory(wjob)  # repro: allow[DT202]
        jip = JobInProgress(
            job_id=f"job_{next(self._job_seq):06d}",
            wjob=wjob,
            workflow_name=workflow_name,
            submit_time=self.sim.now,
            duration_sampler=sampler,
        )
        wip._register_job(wjob_name, jip)
        self.jobs.append(jip)
        self._wjob_running += 1
        self._notify("on_wjob_submitted", jip, self.sim.now)
        self.scheduler.on_wjob_submitted(jip, self.sim.now)
        self._mark_scheduler_dirty()
        self.schedule_round()
        return jip

    # -- heartbeats & assignment ---------------------------------------------

    def start_heartbeats(self) -> None:
        """Begin each tracker's periodic heartbeat loop.

        Trackers are staggered across the first interval so the master does
        not see all heartbeats at the same instant (as in a real cluster).
        An infinite ``heartbeat_interval`` disables the periodic loop —
        useful for large sweeps where ``eager_heartbeats`` already covers
        every scheduling opportunity.
        """
        interval = self.config.heartbeat_interval
        if interval == float("inf"):
            return
        for tracker in self.trackers:
            offset = interval * (tracker.tracker_id + 1) / len(self.trackers)
            tick_time = self.sim.now + offset
            self._hb_anchor[tracker.tracker_id] = tick_time
            self.sim.schedule(tick_time, self._heartbeat_tick, tracker)

    def _heartbeat_tick(self, tracker: TaskTracker) -> None:
        if not tracker.alive:
            # The chain dies with the tracker; revive_tracker re-arms it.
            return
        if self.config.batched_assignment:
            launched = self._heartbeat_batched(tracker)
        else:
            launched = self.heartbeat(tracker)
        tid = tracker.tracker_id
        self._hb_anchor[tid] = self.sim.now
        if self._hb_quiescent and not launched and self._tracker_quiescent(tracker):
            # Park the timer: under eager heartbeats this tick was a no-op
            # and every future one would be too, until a wake condition
            # (_mark_scheduler_dirty / a slot freeing) re-arms it on the
            # same phase grid.
            self._parked[tid] = None
            return
        self._parked.pop(tid, None)
        self.sim.schedule_after(self.config.heartbeat_interval, self._heartbeat_tick, tracker)

    # repro: budget O(1)
    def _tracker_quiescent(self, tracker: TaskTracker) -> bool:
        """Park test: every slot kind is full or provably unservable."""
        scheduler = self.scheduler
        for kind in (TaskKind.MAP, TaskKind.REDUCE):
            if tracker.free_slots(kind) > 0 and scheduler.has_runnable(kind):
                return False
        return True

    # repro: budget O(log n)
    def heartbeat(self, tracker: TaskTracker) -> List[Task]:
        """One tracker reports in; fill its free slots from the scheduler."""
        launched: List[Task] = []
        scheduler = self.scheduler
        for kind in (TaskKind.MAP, TaskKind.REDUCE):
            while tracker.free_slots(kind) > 0:
                if not scheduler.has_runnable(kind):
                    # A prior select_task proved idle and nothing changed
                    # since; asking again could not answer differently.
                    break
                task = scheduler.select_task(kind, self.sim.now)
                if task is None:
                    scheduler.note_idle(kind)
                    break
                self._launch(task, tracker)
                launched.append(task)
        return launched

    # repro: budget O(n)
    def _heartbeat_batched(self, tracker: TaskTracker) -> List[Task]:
        """Batched form of :meth:`heartbeat`: one ``select_tasks`` round per
        kind fills every free slot of this tracker
        (``ClusterConfig.batched_assignment``, DESIGN.md §11).  Decisions
        and traces are byte-identical to the one-launch-per-call loop —
        within a tick nothing but our own launches changes scheduler state.
        """
        launched: List[Task] = []
        scheduler = self.scheduler

        def _launch_here(task: Task) -> None:
            self._launch(task, tracker)
            launched.append(task)

        for kind in (TaskKind.MAP, TaskKind.REDUCE):
            free = tracker.free_slots(kind)
            if free <= 0 or not scheduler.has_runnable(kind):
                continue
            if scheduler.select_tasks(kind, self.sim.now, free, _launch_here) < free:
                scheduler.note_idle(kind)
        return launched

    @hot_path
    # repro: budget O(n)
    def _wake_parked(self) -> None:
        """Re-arm parked heartbeat timers whose tracker could now be served.

        A woken timer is re-aligned to the tracker's original phase grid —
        the smallest ``anchor + k * interval`` strictly after ``now`` — so
        tick times match the never-parked reference path exactly.
        """
        now = self.sim.now
        interval = self.config.heartbeat_interval
        woken = [
            tid for tid in self._parked if not self._tracker_quiescent(self.trackers[tid])
        ]
        for tid in woken:
            del self._parked[tid]
            anchor = self._hb_anchor[tid]
            tick = anchor + (math.floor((now - anchor) / interval) + 1) * interval
            if tick <= now:
                tick += interval
            self.sim.schedule(tick, self._heartbeat_tick, self.trackers[tid])

    # repro: budget O(n)
    def _mark_scheduler_dirty(self) -> None:
        """A state change could make ``select_task`` answer differently:
        refresh the scheduler's runnability hints and wake parked timers."""
        self.scheduler.note_state_change()
        if self._parked:
            self._wake_parked()

    def notify_plan_installed(self) -> None:
        """A scheduling plan was (re)installed mid-run (replanning path)."""
        self._mark_scheduler_dirty()

    def schedule_round(self) -> None:
        """Cluster-wide assignment sweep (out-of-band heartbeat path).

        Because no scheduler here is locality-aware, one ``None`` answer
        from the scheduler means no tracker can be served, so the sweep is
        O(assignments), not O(trackers x assignments).
        """
        if not self.config.eager_heartbeats or self._in_round:
            # Re-entrant calls (a submission triggered from within a
            # completion) fold into the outer round's loop.
            return
        self._in_round = True
        try:
            if self.config.batched_assignment and self.speculator is None:
                # Speculative backups piggyback on proven-idle answers the
                # unbatched loop surfaces per call; with a speculator
                # attached the reference loop below stays authoritative.
                self._round_batched()
                return
            for kind in (TaskKind.MAP, TaskKind.REDUCE):
                while self.free_slots(kind) > 0:
                    task = self.scheduler.select_task(kind, self.sim.now)
                    if task is None:
                        # A proven-idle answer: parked heartbeat timers may
                        # reuse it until the next state change.
                        self.scheduler.note_idle(kind)
                        if self.speculator is not None:
                            # Idle slots may back up stragglers (Hadoop's
                            # speculative execution kicks in when the regular
                            # scheduler has nothing to assign).
                            task = self.speculator.select_backup(kind, self.sim.now)
                    if task is None:
                        break
                    tracker = self._pick_tracker(kind)
                    self._launch(task, tracker)
        finally:
            self._in_round = False

    # repro: budget O(n)
    def _round_batched(self) -> None:
        """Batched form of :meth:`schedule_round`: one ``select_tasks``
        round per kind fills every free slot cluster-wide, each launch
        landing on the round-robin tracker the unbatched sweep would have
        picked (DESIGN.md §11).  Unlike the heartbeat path this must *not*
        gate on ``has_runnable`` — the reference sweep always asks the
        scheduler once per kind, and that fruitless ask emits an idle
        decision event the batched trace must reproduce.
        """
        scheduler = self.scheduler
        for kind in (TaskKind.MAP, TaskKind.REDUCE):
            free = self.free_slots(kind)
            if free <= 0:
                continue

            def _launch_rr(task: Task, _kind: TaskKind = kind) -> None:
                self._launch(task, self._pick_tracker(_kind))

            if scheduler.select_tasks(kind, self.sim.now, free, _launch_rr) < free:
                scheduler.note_idle(kind)
        return
    # repro: budget O(log n)
    def _pick_tracker(self, kind: TaskKind) -> TaskTracker:
        """Round-robin over trackers with a free slot of ``kind``.

        The free-tracker ring is a bitmask over tracker ids; the cyclic
        successor of the round-robin pointer falls out of two word-packed
        lowest-set-bit probes (first set bit at or after the pointer, else
        wrap to the lowest set bit) instead of an O(n) probe loop.
        """
        mask = self._free_masks[kind.uses_map_slot]
        if not mask:
            raise RuntimeError("no free slot despite positive cluster-wide count")
        upper = mask >> self._rr_pointer
        if upper:
            tid = self._rr_pointer + ((upper & -upper).bit_length() - 1)
        else:
            tid = (mask & -mask).bit_length() - 1
        self._rr_pointer = (tid + 1) % len(self.trackers)
        return self.trackers[tid]

    # repro: budget O(1)
    def _update_free_mask(self, tracker: TaskTracker) -> None:
        """Re-derive one tracker's free-ring bits from its slot state."""
        bit = 1 << tracker.tracker_id
        if tracker.alive and tracker.free_map_slots > 0:
            self._free_masks[True] |= bit
        else:
            self._free_masks[True] &= ~bit
        if tracker.alive and tracker.free_reduce_slots > 0:
            self._free_masks[False] |= bit
        else:
            self._free_masks[False] &= ~bit

    def _launch(self, task: Task, tracker: TaskTracker) -> None:
        tracker.occupy(task)
        if task.kind.uses_map_slot:
            self._free_maps -= 1
        else:
            self._free_reduces -= 1
        self._update_free_mask(tracker)
        task.launch_time = self.sim.now
        if self.tracer.enabled:
            # Slot-idle gap: seconds since the consumed pool's oldest
            # free-up.  Slots free at simulation start have no recorded
            # free-up, so their first assignment carries wait=None.
            pool = self._free_since[task.kind.uses_map_slot]
            wait = self.sim.now - pool.popleft() if pool else None
            self.tracer.incr(self.scheduler.name, "assignments")
            if wait is not None:
                self.tracer.incr(self.scheduler.name, "assign_wait_seconds", wait)
                self.tracer.incr(self.scheduler.name, "assign_wait_samples")
            self.tracer.record(
                "assign",
                self.sim.now,
                workflow=task.workflow_name,
                task=task.task_id,
                slot_kind=task.kind.value,
                tracker=tracker.tracker_id,
                wait=wait,
            )
        if task.kind is not TaskKind.SUBMIT and task.workflow_name is not None and not task.speculative:
            # Backup attempts duplicate an index already counted in rho.
            self.workflows[task.workflow_name].scheduled_tasks += 1
        if not task.speculative:
            self.scheduler.on_task_assigned(task, self.sim.now)
        self._notify("on_task_launch", task, self.sim.now)
        task.completion_handle = self.sim.schedule_after(
            task.duration, self._complete_task, task, tracker
        )

    # -- completion ----------------------------------------------------------

    def _complete_task(self, task: Task, tracker: TaskTracker) -> None:
        now = self.sim.now
        tracker.release(task)
        if task.kind.uses_map_slot:
            self._free_maps += 1
        else:
            self._free_reduces += 1
        self._update_free_mask(tracker)
        task.finish_time = now
        if self.tracer.enabled:
            self._trace_slot_free(task, now)
        if self.speculator is not None:
            # This attempt committed; retire any sibling attempts first so
            # the logical task is accounted exactly once.
            for loser in self.speculator.commit(task):
                self._kill_attempt(loser)
        _maps_done, job_done = task.job.on_task_complete(task, now)
        self._notify("on_task_complete", task, now)

        if task.kind is TaskKind.SUBMIT:
            # The submitter map task loaded the wjob's jar and initialised
            # its tasks on this slave; the wjob now reaches the master.
            self.submit_wjob(task.job.workflow_name, task.payload)
            if job_done:
                self.scheduler.on_job_completed(task.job, now)
        elif job_done:
            self._on_wjob_completed(task.job, now)
        # The completion itself (slot freed, possibly reduces now ready or
        # dependents unlocked) is a wake/dirty condition.
        self._mark_scheduler_dirty()
        self.schedule_round()

    def _kill_attempt(self, task: Task) -> None:
        """Retire a running attempt whose logical task is covered elsewhere."""
        if task.completion_handle is not None:
            task.completion_handle.cancel()
        tracker = self.trackers[task.tracker_id]
        tracker.release(task)
        if tracker.alive:
            if task.kind.uses_map_slot:
                self._free_maps += 1
            else:
                self._free_reduces += 1
            if self.tracer.enabled:
                self._trace_slot_free(task, self.sim.now)
        self._update_free_mask(tracker)
        task.job.on_attempt_killed(task)
        self._notify("on_task_lost", task, self.sim.now)
        if self._parked:
            # A slot freed on a possibly-parked tracker: wake it if the
            # scheduler may have something for it.
            self._wake_parked()

    def _trace_slot_free(self, task: Task, now: float) -> None:
        """Record a slot returning to the pool (tracer attached only)."""
        uses_map = task.kind.uses_map_slot
        self._free_since[uses_map].append(now)
        self.tracer.incr(self.scheduler.name, "slot_frees")
        self.tracer.record(
            "slot_free",
            now,
            slot_kind="map" if uses_map else "reduce",
            workflow=task.workflow_name,
            free=self._free_maps if uses_map else self._free_reduces,
        )

    # -- failure handling ------------------------------------------------------

    def kill_tracker(self, tracker_id: int) -> List[Task]:
        """A TaskTracker stops heartbeating: Hadoop's node-failure path.

        Running attempts die and are re-queued on their jobs; finished map
        outputs stored on the node are invalidated for still-running jobs
        (their maps re-execute); WOHA submit tasks re-arm.  The node's
        slots leave the capacity pool until :meth:`revive_tracker`.

        Returns the task attempts that were lost.
        """
        tracker = self.trackers[tracker_id]
        if not tracker.alive:
            raise ValueError(f"tracker {tracker_id} is already dead")
        now = self.sim.now
        tracker.alive = False
        # Idle slots leave the pool; a parked timer dies with the tracker
        # (revive_tracker re-arms it).
        self._free_maps -= tracker.free_map_slots
        self._free_reduces -= tracker.free_reduce_slots
        self._update_free_mask(tracker)
        self._parked.pop(tracker_id, None)
        lost = list(tracker.running)
        for task in lost:
            if task.completion_handle is not None:
                task.completion_handle.cancel()
            tracker.release(task)
            if self.speculator is not None and self.speculator.has_sibling(task):
                # A backup still covers the index; nothing to re-queue.
                task.job.on_attempt_killed(task)
            else:
                # The index is now uncovered: re-queue it and roll back the
                # single rho increment its original launch made (whichever
                # attempt happened to die last).
                task.job.on_task_lost(task)
                if task.kind is not TaskKind.SUBMIT and task.workflow_name is not None:
                    self.workflows[task.workflow_name].scheduled_tasks -= 1
            self._notify("on_task_lost", task, now)
        # Re-execute completed maps whose intermediate output died with the
        # node (only jobs with unfinished reducers are affected).
        for jip in self.jobs:
            if jip.completed:
                continue
            rerun = jip.invalidate_map_outputs(tracker_id)
            if rerun and jip.workflow_name is not None:
                self.workflows[jip.workflow_name].scheduled_tasks -= rerun
        self._mark_scheduler_dirty()
        self.schedule_round()
        return lost

    def revive_tracker(self, tracker_id: int) -> None:
        """Bring a failed tracker back with empty slots."""
        tracker = self.trackers[tracker_id]
        if tracker.alive:
            raise ValueError(f"tracker {tracker_id} is already alive")
        tracker.alive = True
        self._free_maps += tracker.free_map_slots
        self._free_reduces += tracker.free_reduce_slots
        self._update_free_mask(tracker)
        if self.config.heartbeat_interval != float("inf"):
            self._parked.pop(tracker_id, None)
            self.sim.schedule_after(self.config.heartbeat_interval, self._heartbeat_tick, tracker)
        self._mark_scheduler_dirty()
        self.schedule_round()

    def _on_wjob_completed(self, jip: JobInProgress, now: float) -> None:
        wf_name = jip.workflow_name
        if wf_name is None:
            self.scheduler.on_job_completed(jip, now)
            self._notify("on_job_completed", jip, now)
            return
        # Dependency bookkeeping must precede the completion notifications:
        # the Oozie-lite coordinator reacts to `on_job_completed` by asking
        # which wjobs are now ready.
        wip = self.workflows[wf_name]
        wip._mark_job_completed(jip.name)
        self._wjob_running -= 1
        # Unlock dependents.  In WOHA mode the JobTracker holds the
        # topology (it arrived with the configuration) and pokes the
        # submitter job; in Oozie mode only the coordinator (a listener)
        # reacts, preserving the paper's information separation.
        # (sorted: frozenset iteration is hash-ordered, which would make
        # unlock order — and thus entire runs — vary across processes.)
        for dep in sorted(wip.definition.dependents(jip.name)):
            pending = wip.pending_prereqs[dep]
            pending.discard(jip.name)
            if not pending:
                wip._mark_ready(dep)
                if wip.submitter is not None:
                    wip.submitter.unlock(dep)
        self.scheduler.on_job_completed(jip, now)
        self._notify("on_job_completed", jip, now)
        if wip.done and wip.completion_time is None:
            wip.completion_time = now
            self.scheduler.on_workflow_completed(wip, now)
            self._notify("on_workflow_completed", wip, now)
