"""The JobTracker: Hadoop-1's master node.

Responsibilities mirrored from Hadoop-1.2.1 + WOHA's extensions:

* accept workflow and job submissions, hand out unique ids;
* on each heartbeat, ask the pluggable Workflow Scheduler for tasks to fill
  the reporting tracker's free slots;
* track task completions, free slots, advance job/workflow state;
* (WOHA mode) hold each workflow's scheduling plan, run the map-only
  submitter job, and unlock submitter tasks as prerequisites finish.

The JobTracker deliberately performs **no workflow analysis** — that is the
paper's core design constraint (§III-A).  Plans arrive pre-computed from
clients; dependency bookkeeping is O(edges) counter decrements.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Union

from repro.cluster.config import ClusterConfig
from repro.cluster.job import JobInProgress, SubmitterJob
from repro.cluster.tasks import Task, TaskKind
from repro.cluster.tasktracker import TaskTracker
from repro.events import Simulator
from repro.schedulers.base import WorkflowScheduler
from repro.trace import NULL_TRACER, DecisionTracer, NullTracer
from repro.workflow.model import Workflow

__all__ = ["WorkflowInProgress", "JobTracker"]


class WorkflowInProgress:
    """Master-side runtime state of one submitted workflow.

    Attributes:
        definition: the immutable :class:`Workflow`.
        wf_id: JobTracker-assigned unique id.
        plan: the scheduling plan shipped by the client (WOHA mode), opaque
            to the JobTracker itself; the Workflow Scheduler interprets it.
        scheduled_tasks: the *true progress* ``rho_i`` of §IV-B — wjob tasks
            launched so far (submitter tasks do not count; they are not part
            of the plan's task population).
    """

    def __init__(self, definition: Workflow, wf_id: str, submit_time: float) -> None:
        self.definition = definition
        self.wf_id = wf_id
        self.submit_time = submit_time
        self.plan = None  # type: object
        self.submitter: Optional[SubmitterJob] = None
        self.jobs: Dict[str, JobInProgress] = {}
        self.completed: Set[str] = set()
        self.pending_prereqs: Dict[str, Set[str]] = {
            job.name: set(job.prerequisites) for job in definition.jobs
        }
        self.scheduled_tasks = 0
        self.completion_time: Optional[float] = None

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def deadline(self) -> Optional[float]:
        return self.definition.deadline

    @property
    def done(self) -> bool:
        return len(self.completed) == len(self.definition)

    @property
    def total_tasks(self) -> int:
        return self.definition.total_tasks

    def ready_wjobs(self) -> List[str]:
        """Wjobs whose prerequisites have all finished and which are not yet
        submitted, in the workflow's deterministic topological order."""
        return [
            name
            for name in self.definition.topological_order()
            if not self.pending_prereqs[name] and name not in self.jobs
        ]

    def active_jobs(self) -> List[JobInProgress]:
        """Submitted-but-unfinished wjobs, submission-ordered."""
        return [jip for jip in self.jobs.values() if not jip.completed]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WorkflowInProgress({self.name!r}, {len(self.completed)}/{len(self.definition)} jobs, "
            f"rho={self.scheduled_tasks})"
        )


class JobTracker:
    """The master node.

    Args:
        sim: the discrete-event engine everything runs on.
        config: cluster sizing/timing.
        scheduler: the Workflow Scheduler policy to consult.

    Listener objects registered via :meth:`add_listener` receive the hooks
    they define out of: ``on_task_launch``, ``on_task_complete``,
    ``on_wjob_submitted``, ``on_job_completed``, ``on_workflow_submitted``,
    ``on_workflow_completed``.  Metrics collectors and the Oozie-lite
    coordinator are both plain listeners.
    """

    def __init__(
        self,
        sim: Simulator,
        config: ClusterConfig,
        scheduler: WorkflowScheduler,
        duration_sampler_factory: Optional[Callable] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.scheduler = scheduler
        # Optional per-job actual-duration override (estimation-error
        # ablation); plans always see the declared estimates.
        self.duration_sampler_factory = duration_sampler_factory
        self.trackers: List[TaskTracker] = [
            TaskTracker(i, config.map_slots_per_node, config.reduce_slots_per_node)
            for i in range(config.num_nodes)
        ]
        self.workflows: Dict[str, WorkflowInProgress] = {}  # by workflow name
        self.jobs: List[JobInProgress] = []  # submission order, all kinds
        self._job_seq = itertools.count(1)
        self._wf_seq = itertools.count(1)
        self._free_maps = config.total_map_slots
        self._free_reduces = config.total_reduce_slots
        self._rr_pointer = 0  # round-robin start for tracker selection
        self._listeners: List[object] = []
        self._in_round = False
        self.speculator = None  # optional SpeculationManager
        self.tracer: Union[DecisionTracer, NullTracer] = NULL_TRACER
        # Free-up timestamps per slot pool (True = map pool), consumed
        # FIFO by launches to derive slot-idle ("assignment latency")
        # counters.  Only maintained while a tracer is attached.
        self._free_since: Dict[bool, Deque[float]] = {True: deque(), False: deque()}
        scheduler.bind(self)

    def attach_speculator(self, speculator: object) -> None:
        """Enable speculative execution (see :mod:`repro.cluster.speculation`)."""
        self.speculator = speculator

    def attach_tracer(self, tracer: Union[DecisionTracer, NullTracer]) -> None:
        """Record decision/slot events into ``tracer`` (and via the
        scheduler, which gets the same tracer from ClusterSimulation).

        The tracer is also registered as a listener so workflow lifecycle
        events land in the same log.
        """
        self.tracer = tracer
        if tracer.enabled:
            self.add_listener(tracer)

    # -- listeners ---------------------------------------------------------

    def add_listener(self, listener: object) -> None:
        """Register an event listener (metrics, Oozie, post-mortem, ...)."""
        self._listeners.append(listener)

    def _notify(self, hook: str, *args) -> None:
        # The hook name itself is the dynamic axis (one string per event
        # kind), so no static target list is honest here; listeners are a
        # fixed config-time set (tracer, Oozie, metrics, contract monitor),
        # not a function of the workflow count.
        for listener in self._listeners:  # repro: allow[DT203]
            fn = getattr(listener, hook, None)
            if fn is not None:
                fn(*args)  # repro: allow[DT202]

    # -- cluster introspection ----------------------------------------------

    @property
    def total_slots(self) -> int:
        """What a WOHA client gets when it asks for the system slot count."""
        return self.config.total_slots

    def free_slots(self, kind: TaskKind) -> int:
        """Cluster-wide free slots of the given kind."""
        return self._free_maps if kind.uses_map_slot else self._free_reduces

    def running_wjob_count(self) -> int:
        """Unfinished wjobs currently registered (submitter jobs excluded)."""
        return sum(1 for jip in self.jobs if not jip.completed and not isinstance(jip, SubmitterJob))

    # -- submission paths ----------------------------------------------------

    def submit_workflow(self, workflow: Workflow, plan: object = None, use_submitter: bool = True) -> WorkflowInProgress:
        """Register a workflow's configuration (WOHA client path, steps e-i).

        With ``use_submitter`` (WOHA mode) a map-only submitter job is
        created whose tasks, once run on slaves, submit the wjobs; root
        wjobs are unlocked immediately.  With ``use_submitter=False`` the
        caller (Oozie-lite) submits wjobs itself via :meth:`submit_wjob`.
        """
        if workflow.name in self.workflows:
            raise ValueError(f"workflow name {workflow.name!r} already submitted")
        wf_id = f"wf_{next(self._wf_seq):06d}"
        wip = WorkflowInProgress(workflow, wf_id, self.sim.now)
        wip.plan = plan
        self.workflows[workflow.name] = wip
        self._notify("on_workflow_submitted", wip, self.sim.now)
        self.scheduler.on_workflow_submitted(wip, self.sim.now)
        if use_submitter:
            submitter = SubmitterJob(
                job_id=f"job_{next(self._job_seq):06d}",
                workflow_name=workflow.name,
                wjob_names=workflow.topological_order(),
                submit_time=self.sim.now,
                task_duration=self.config.submit_task_duration,
            )
            wip.submitter = submitter
            self.jobs.append(submitter)
            for name in workflow.roots():
                submitter.unlock(name)
            self.scheduler.on_wjob_submitted(submitter, self.sim.now)
        self.schedule_round()
        return wip

    def submit_wjob(self, workflow_name: str, wjob_name: str) -> JobInProgress:
        """Register one wjob as a runnable Hadoop job (submitter / Oozie path)."""
        wip = self.workflows[workflow_name]
        if wjob_name in wip.jobs:
            raise ValueError(f"{workflow_name}/{wjob_name} submitted twice")
        if wip.pending_prereqs[wjob_name]:
            raise ValueError(
                f"{workflow_name}/{wjob_name} submitted with unfinished prerequisites "
                f"{sorted(wip.pending_prereqs[wjob_name])}"
            )
        wjob = wip.definition.job(wjob_name)
        sampler = None
        if self.duration_sampler_factory is not None:
            # Injected estimation-noise hook (repro.noise); samplers are
            # seeded there, which is the deal DT102's allow-list encodes.
            sampler = self.duration_sampler_factory(wjob)  # repro: allow[DT202]
        jip = JobInProgress(
            job_id=f"job_{next(self._job_seq):06d}",
            wjob=wjob,
            workflow_name=workflow_name,
            submit_time=self.sim.now,
            duration_sampler=sampler,
        )
        wip.jobs[wjob_name] = jip
        self.jobs.append(jip)
        self._notify("on_wjob_submitted", jip, self.sim.now)
        self.scheduler.on_wjob_submitted(jip, self.sim.now)
        self.schedule_round()
        return jip

    # -- heartbeats & assignment ---------------------------------------------

    def start_heartbeats(self) -> None:
        """Begin each tracker's periodic heartbeat loop.

        Trackers are staggered across the first interval so the master does
        not see all heartbeats at the same instant (as in a real cluster).
        An infinite ``heartbeat_interval`` disables the periodic loop —
        useful for large sweeps where ``eager_heartbeats`` already covers
        every scheduling opportunity.
        """
        interval = self.config.heartbeat_interval
        if interval == float("inf"):
            return
        for tracker in self.trackers:
            offset = interval * (tracker.tracker_id + 1) / len(self.trackers)
            self.sim.schedule(self.sim.now + offset, self._heartbeat_tick, tracker)

    def _heartbeat_tick(self, tracker: TaskTracker) -> None:
        if tracker.alive:
            self.heartbeat(tracker)
            self.sim.schedule_after(self.config.heartbeat_interval, self._heartbeat_tick, tracker)

    # repro: budget O(log n)
    def heartbeat(self, tracker: TaskTracker) -> List[Task]:
        """One tracker reports in; fill its free slots from the scheduler."""
        launched: List[Task] = []
        for kind in (TaskKind.MAP, TaskKind.REDUCE):
            while tracker.free_slots(kind) > 0:
                task = self.scheduler.select_task(kind, self.sim.now)
                if task is None:
                    break
                self._launch(task, tracker)
                launched.append(task)
        return launched

    def schedule_round(self) -> None:
        """Cluster-wide assignment sweep (out-of-band heartbeat path).

        Because no scheduler here is locality-aware, one ``None`` answer
        from the scheduler means no tracker can be served, so the sweep is
        O(assignments), not O(trackers x assignments).
        """
        if not self.config.eager_heartbeats or self._in_round:
            # Re-entrant calls (a submission triggered from within a
            # completion) fold into the outer round's loop.
            return
        self._in_round = True
        try:
            for kind in (TaskKind.MAP, TaskKind.REDUCE):
                while self.free_slots(kind) > 0:
                    task = self.scheduler.select_task(kind, self.sim.now)
                    if task is None and self.speculator is not None:
                        # Idle slots may back up stragglers (Hadoop's
                        # speculative execution kicks in when the regular
                        # scheduler has nothing to assign).
                        task = self.speculator.select_backup(kind, self.sim.now)
                    if task is None:
                        break
                    tracker = self._pick_tracker(kind)
                    self._launch(task, tracker)
        finally:
            self._in_round = False

    def _pick_tracker(self, kind: TaskKind) -> TaskTracker:
        """Round-robin over trackers with a free slot of ``kind``."""
        n = len(self.trackers)
        for i in range(n):
            tracker = self.trackers[(self._rr_pointer + i) % n]
            if tracker.alive and tracker.free_slots(kind) > 0:
                self._rr_pointer = (self._rr_pointer + i + 1) % n
                return tracker
        raise RuntimeError("no free slot despite positive cluster-wide count")

    def _launch(self, task: Task, tracker: TaskTracker) -> None:
        tracker.occupy(task)
        if task.kind.uses_map_slot:
            self._free_maps -= 1
        else:
            self._free_reduces -= 1
        task.launch_time = self.sim.now
        if self.tracer.enabled:
            # Slot-idle gap: seconds since the consumed pool's oldest
            # free-up.  Slots free at simulation start have no recorded
            # free-up, so their first assignment carries wait=None.
            pool = self._free_since[task.kind.uses_map_slot]
            wait = self.sim.now - pool.popleft() if pool else None
            self.tracer.incr(self.scheduler.name, "assignments")
            if wait is not None:
                self.tracer.incr(self.scheduler.name, "assign_wait_seconds", wait)
                self.tracer.incr(self.scheduler.name, "assign_wait_samples")
            self.tracer.record(
                "assign",
                self.sim.now,
                workflow=task.workflow_name,
                task=task.task_id,
                slot_kind=task.kind.value,
                tracker=tracker.tracker_id,
                wait=wait,
            )
        if task.kind is not TaskKind.SUBMIT and task.workflow_name is not None and not task.speculative:
            # Backup attempts duplicate an index already counted in rho.
            self.workflows[task.workflow_name].scheduled_tasks += 1
        if not task.speculative:
            self.scheduler.on_task_assigned(task, self.sim.now)
        self._notify("on_task_launch", task, self.sim.now)
        task.completion_handle = self.sim.schedule_after(
            task.duration, self._complete_task, task, tracker
        )

    # -- completion ----------------------------------------------------------

    def _complete_task(self, task: Task, tracker: TaskTracker) -> None:
        now = self.sim.now
        tracker.release(task)
        if task.kind.uses_map_slot:
            self._free_maps += 1
        else:
            self._free_reduces += 1
        task.finish_time = now
        if self.tracer.enabled:
            self._trace_slot_free(task, now)
        if self.speculator is not None:
            # This attempt committed; retire any sibling attempts first so
            # the logical task is accounted exactly once.
            for loser in self.speculator.commit(task):
                self._kill_attempt(loser)
        _maps_done, job_done = task.job.on_task_complete(task, now)
        self._notify("on_task_complete", task, now)

        if task.kind is TaskKind.SUBMIT:
            # The submitter map task loaded the wjob's jar and initialised
            # its tasks on this slave; the wjob now reaches the master.
            self.submit_wjob(task.job.workflow_name, task.payload)
            if job_done:
                self.scheduler.on_job_completed(task.job, now)
        elif job_done:
            self._on_wjob_completed(task.job, now)
        self.schedule_round()

    def _kill_attempt(self, task: Task) -> None:
        """Retire a running attempt whose logical task is covered elsewhere."""
        if task.completion_handle is not None:
            task.completion_handle.cancel()
        tracker = self.trackers[task.tracker_id]
        tracker.release(task)
        if tracker.alive:
            if task.kind.uses_map_slot:
                self._free_maps += 1
            else:
                self._free_reduces += 1
            if self.tracer.enabled:
                self._trace_slot_free(task, self.sim.now)
        task.job.on_attempt_killed(task)
        self._notify("on_task_lost", task, self.sim.now)

    def _trace_slot_free(self, task: Task, now: float) -> None:
        """Record a slot returning to the pool (tracer attached only)."""
        uses_map = task.kind.uses_map_slot
        self._free_since[uses_map].append(now)
        self.tracer.incr(self.scheduler.name, "slot_frees")
        self.tracer.record(
            "slot_free",
            now,
            slot_kind="map" if uses_map else "reduce",
            workflow=task.workflow_name,
            free=self._free_maps if uses_map else self._free_reduces,
        )

    # -- failure handling ------------------------------------------------------

    def kill_tracker(self, tracker_id: int) -> List[Task]:
        """A TaskTracker stops heartbeating: Hadoop's node-failure path.

        Running attempts die and are re-queued on their jobs; finished map
        outputs stored on the node are invalidated for still-running jobs
        (their maps re-execute); WOHA submit tasks re-arm.  The node's
        slots leave the capacity pool until :meth:`revive_tracker`.

        Returns the task attempts that were lost.
        """
        tracker = self.trackers[tracker_id]
        if not tracker.alive:
            raise ValueError(f"tracker {tracker_id} is already dead")
        now = self.sim.now
        tracker.alive = False
        # Idle slots leave the pool.
        self._free_maps -= tracker.free_map_slots
        self._free_reduces -= tracker.free_reduce_slots
        lost = list(tracker.running)
        for task in lost:
            if task.completion_handle is not None:
                task.completion_handle.cancel()
            tracker.release(task)
            if self.speculator is not None and self.speculator.has_sibling(task):
                # A backup still covers the index; nothing to re-queue.
                task.job.on_attempt_killed(task)
            else:
                # The index is now uncovered: re-queue it and roll back the
                # single rho increment its original launch made (whichever
                # attempt happened to die last).
                task.job.on_task_lost(task)
                if task.kind is not TaskKind.SUBMIT and task.workflow_name is not None:
                    self.workflows[task.workflow_name].scheduled_tasks -= 1
            self._notify("on_task_lost", task, now)
        # Re-execute completed maps whose intermediate output died with the
        # node (only jobs with unfinished reducers are affected).
        for jip in self.jobs:
            if jip.completed:
                continue
            rerun = jip.invalidate_map_outputs(tracker_id)
            if rerun and jip.workflow_name is not None:
                self.workflows[jip.workflow_name].scheduled_tasks -= rerun
        self.schedule_round()
        return lost

    def revive_tracker(self, tracker_id: int) -> None:
        """Bring a failed tracker back with empty slots."""
        tracker = self.trackers[tracker_id]
        if tracker.alive:
            raise ValueError(f"tracker {tracker_id} is already alive")
        tracker.alive = True
        self._free_maps += tracker.free_map_slots
        self._free_reduces += tracker.free_reduce_slots
        if self.config.heartbeat_interval != float("inf"):
            self.sim.schedule_after(self.config.heartbeat_interval, self._heartbeat_tick, tracker)
        self.schedule_round()

    def _on_wjob_completed(self, jip: JobInProgress, now: float) -> None:
        wf_name = jip.workflow_name
        if wf_name is None:
            self.scheduler.on_job_completed(jip, now)
            self._notify("on_job_completed", jip, now)
            return
        # Dependency bookkeeping must precede the completion notifications:
        # the Oozie-lite coordinator reacts to `on_job_completed` by asking
        # which wjobs are now ready.
        wip = self.workflows[wf_name]
        wip.completed.add(jip.name)
        # Unlock dependents.  In WOHA mode the JobTracker holds the
        # topology (it arrived with the configuration) and pokes the
        # submitter job; in Oozie mode only the coordinator (a listener)
        # reacts, preserving the paper's information separation.
        # (sorted: frozenset iteration is hash-ordered, which would make
        # unlock order — and thus entire runs — vary across processes.)
        for dep in sorted(wip.definition.dependents(jip.name)):
            pending = wip.pending_prereqs[dep]
            pending.discard(jip.name)
            if not pending and wip.submitter is not None:
                wip.submitter.unlock(dep)
        self.scheduler.on_job_completed(jip, now)
        self._notify("on_job_completed", jip, now)
        if wip.done and wip.completion_time is None:
            wip.completion_time = now
            self.scheduler.on_workflow_completed(wip, now)
            self._notify("on_workflow_completed", wip, now)
