"""Speculative execution: Hadoop's straggler mitigation.

Hadoop-1 launches a *backup attempt* for a task that runs far behind its
peers; whichever attempt finishes first commits and the other is killed.
Stragglers matter to WOHA because a single slow task at a workflow's join
point stalls the whole plan.

Policy (a simplified LATE): an attempt is speculation-eligible once it has
run longer than ``slow_factor`` times its estimated duration (and at least
``min_runtime`` seconds), and has no live backup.  The backup's duration is
drawn as a *fresh* execution — by default the job's estimate — modelling a
re-run on a healthy node.

Wire-up::

    sim = ClusterSimulation(...)
    speculator = SpeculationManager(sim.sim, sim.jobtracker)

The manager registers itself with the JobTracker; the JobTracker consults
it whenever the Workflow Scheduler leaves slots idle, and lets it kill the
losing attempt on commit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.jobtracker import JobTracker
from repro.cluster.tasks import Task, TaskKind
from repro.events import Simulator

__all__ = ["SpeculationManager"]

_Key = Tuple[str, str, int]  # (job_id, kind value, task index)


def _key(task: Task) -> _Key:
    return (task.job.job_id, task.kind.value, task.index)


class SpeculationManager:
    """Tracks running attempts and proposes/retires backups.

    Args:
        sim: the event engine (for the periodic eligibility check).
        jobtracker: the master to attach to.
        slow_factor: an attempt is a straggler once its elapsed time
            exceeds this multiple of its estimated duration.
        min_runtime: never speculate on attempts younger than this.
        check_interval: how often to re-examine eligibility when no other
            scheduling event does it first.
    """

    def __init__(
        self,
        sim: Simulator,
        jobtracker: JobTracker,
        slow_factor: float = 1.5,
        min_runtime: float = 10.0,
        check_interval: float = 10.0,
    ) -> None:
        if slow_factor <= 1.0:
            raise ValueError("slow_factor must exceed 1.0")
        self.sim = sim
        self.jobtracker = jobtracker
        self.slow_factor = slow_factor
        self.min_runtime = min_runtime
        self.check_interval = check_interval
        self._attempts: Dict[_Key, List[Task]] = {}
        self.backups_launched = 0
        self.backups_won = 0
        self._ticking = False
        jobtracker.attach_speculator(self)
        jobtracker.add_listener(self)

    # -- listener hooks (attempt tracking) ----------------------------------

    def on_task_launch(self, task: Task, now: float) -> None:
        if task.kind is TaskKind.SUBMIT:
            return
        self._attempts.setdefault(_key(task), []).append(task)
        if task.speculative:
            self.backups_launched += 1
        self._ensure_ticking()

    def _forget(self, task: Task) -> None:
        attempts = self._attempts.get(_key(task))
        if attempts is None:
            return
        try:
            attempts.remove(task)
        except ValueError:
            pass
        if not attempts:
            self._attempts.pop(_key(task), None)

    def on_task_lost(self, task: Task, now: float) -> None:
        self._forget(task)

    # -- JobTracker integration ------------------------------------------------

    def commit(self, winner: Task) -> List[Task]:
        """An attempt finished; return the sibling attempts to kill."""
        key = _key(winner)
        siblings = [t for t in self._attempts.pop(key, []) if t is not winner]
        if winner.speculative:
            self.backups_won += 1
        return siblings

    def has_sibling(self, task: Task) -> bool:
        """True when another live attempt covers the same logical task."""
        return len(self._attempts.get(_key(task), [])) > 1

    def select_backup(self, kind: TaskKind, now: float) -> Optional[Task]:
        """Pick one straggling attempt of ``kind`` worth backing up."""
        best: Optional[Task] = None
        best_overrun = 0.0
        for attempts in self._attempts.values():
            if len(attempts) != 1:
                continue  # already backed up
            original = attempts[0]
            if original.kind.uses_map_slot is not kind.uses_map_slot:
                continue
            if original.job.completed:
                continue
            launch = original.launch_time if original.launch_time is not None else now
            elapsed = now - launch
            estimate = self._estimate(original)
            if elapsed < max(self.min_runtime, self.slow_factor * estimate):
                continue
            overrun = elapsed / estimate if estimate > 0 else float("inf")
            if best is None or overrun > best_overrun:
                best, best_overrun = original, overrun
        if best is None:
            return None
        return self._make_backup(best)

    def _estimate(self, task: Task) -> float:
        wjob = task.job.wjob
        return wjob.map_duration if task.kind is TaskKind.MAP else wjob.reduce_duration

    def _make_backup(self, original: Task) -> Task:
        """A fresh attempt of the same logical task at nominal speed."""
        backup = Task(
            job=original.job,
            kind=original.kind,
            index=original.index,
            duration=self._estimate(original),
            speculative=True,
        )
        original.job.on_backup_launched(backup)
        return backup

    # -- periodic eligibility check ----------------------------------------------

    def _ensure_ticking(self) -> None:
        if not self._ticking and self.check_interval > 0:
            self._ticking = True
            self.sim.schedule_after(self.check_interval, self._tick)

    def _tick(self) -> None:
        self._ticking = False
        if not self._attempts:
            return  # idle; launches restart the ticker
        self.jobtracker.schedule_round()
        self._ensure_ticking()
