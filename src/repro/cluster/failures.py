"""Failure injection: scripted and random TaskTracker outages.

Hadoop's fault model (the paper's substrate inherits it): a TaskTracker
that stops heartbeating is declared dead; its running task attempts are
re-queued, and completed map outputs it held are recomputed for jobs whose
reducers still need them.  :class:`FailureInjector` drives the
:meth:`~repro.cluster.jobtracker.JobTracker.kill_tracker` /
:meth:`~repro.cluster.jobtracker.JobTracker.revive_tracker` pair either
from an explicit schedule or from a seeded random outage process, so
scheduler robustness can be tested deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.jobtracker import JobTracker
from repro.events import Simulator

__all__ = ["Outage", "FailureSchedule", "FailureInjector"]


@dataclass(frozen=True)
class Outage:
    """One scripted tracker outage; ``down_for=None`` means permanent."""

    time: float
    tracker_id: int
    down_for: Optional[float] = None


@dataclass(frozen=True)
class FailureSchedule:
    """An explicit, validated outage script.

    The audited contract (DESIGN.md §10): every kill and revive this
    schedule triggers lands in
    :meth:`~repro.cluster.jobtracker.JobTracker.kill_tracker` /
    :meth:`~repro.cluster.jobtracker.JobTracker.revive_tracker`, both of
    which end in ``_mark_scheduler_dirty`` — the scheduler's
    ``note_state_change`` plus a wake of every quiescent-parked heartbeat
    timer whose tracker could now be served.  Traces are therefore
    byte-identical with parking on or off under any schedule
    (``tests/cluster/test_failures.py::TestFailureSchedule``).
    """

    outages: Tuple[Outage, ...]

    def __post_init__(self) -> None:
        for outage in self.outages:
            if outage.time < 0:
                raise ValueError(f"outage time {outage.time} is negative")
            if outage.down_for is not None and outage.down_for <= 0:
                raise ValueError(f"outage downtime {outage.down_for} must be positive")

    def validate(self, num_trackers: int) -> None:
        """Check every outage names a tracker the cluster actually has."""
        for outage in self.outages:
            if not (0 <= outage.tracker_id < num_trackers):
                raise ValueError(
                    f"outage names tracker {outage.tracker_id}; cluster has {num_trackers}"
                )

    def apply(self, sim: Simulator, jobtracker: JobTracker) -> "FailureInjector":
        """Validate against ``jobtracker`` and schedule every outage."""
        self.validate(len(jobtracker.trackers))
        injector = FailureInjector(sim, jobtracker)
        injector.schedule(self.outages)
        return injector


class FailureInjector:
    """Schedules tracker outages against a JobTracker.

    Use :meth:`schedule` with explicit :class:`Outage` entries for
    reproducible scenarios, or :meth:`random_outages` to draw a seeded
    outage process.
    """

    def __init__(self, sim: Simulator, jobtracker: JobTracker) -> None:
        self.sim = sim
        self.jobtracker = jobtracker
        self.killed: List[Tuple[float, int]] = []
        self.revived: List[Tuple[float, int]] = []

    def schedule(self, outages: Sequence[Outage]) -> None:
        for outage in outages:
            if not (0 <= outage.tracker_id < len(self.jobtracker.trackers)):
                raise ValueError(f"no tracker {outage.tracker_id}")
            self.sim.schedule(outage.time, self._kill, outage)

    def random_outages(
        self,
        horizon: float,
        rate_per_hour: float,
        mean_downtime: float = 300.0,
        seed: int = 0,
    ) -> List[Outage]:
        """Draw and schedule a Poisson outage process over ``[0, horizon]``.

        Args:
            horizon: simulated seconds covered by the process.
            rate_per_hour: expected tracker failures per hour, cluster-wide.
            mean_downtime: exponential mean of each outage's length.
            seed: RNG seed.
        """
        rng = np.random.default_rng(seed)
        outages: List[Outage] = []
        t = 0.0
        rate_per_second = rate_per_hour / 3600.0
        if rate_per_second <= 0:
            return []
        while True:
            t += float(rng.exponential(1.0 / rate_per_second))
            if t >= horizon:
                break
            outages.append(
                Outage(
                    time=t,
                    tracker_id=int(rng.integers(0, len(self.jobtracker.trackers))),
                    down_for=float(rng.exponential(mean_downtime)),
                )
            )
        self.schedule(outages)
        return outages

    def _kill(self, outage: Outage) -> None:
        tracker = self.jobtracker.trackers[outage.tracker_id]
        if not tracker.alive:
            return  # already down from an overlapping outage
        self.jobtracker.kill_tracker(outage.tracker_id)
        self.killed.append((self.sim.now, outage.tracker_id))
        if outage.down_for is not None:
            self.sim.schedule_after(outage.down_for, self._revive, outage.tracker_id)

    def _revive(self, tracker_id: int) -> None:
        if self.jobtracker.trackers[tracker_id].alive:
            return
        self.jobtracker.revive_tracker(tracker_id)
        self.revived.append((self.sim.now, tracker_id))
