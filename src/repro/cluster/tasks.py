"""Task-level model: the unit the JobTracker assigns to a slot."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.cluster.job import JobInProgress

__all__ = ["TaskKind", "Task"]


class TaskKind(enum.Enum):
    """Which slot type a task occupies.

    WOHA submitter tasks (``SUBMIT``) are map tasks of the per-workflow
    map-only submitter job (§III-A); they occupy a *map slot* but carry a
    wjob name to submit instead of user work.
    """

    MAP = "map"
    REDUCE = "reduce"
    SUBMIT = "submit"

    @property
    def uses_map_slot(self) -> bool:
        return self is not TaskKind.REDUCE


@dataclass(eq=False, slots=True)  # identity equality/hash: each attempt is a distinct object
class Task:
    """One task attempt.

    Attributes:
        job: the owning :class:`~repro.cluster.job.JobInProgress`.
        kind: MAP / REDUCE / SUBMIT.
        index: task index within its phase.
        duration: simulated execution seconds.
        payload: for SUBMIT tasks, the name of the wjob this task submits.
    """

    job: "JobInProgress"
    kind: TaskKind
    index: int
    duration: float
    payload: Optional[str] = None
    # Runtime bookkeeping, filled in by the JobTracker at launch/finish.
    tracker_id: Optional[int] = None
    launch_time: Optional[float] = None
    finish_time: Optional[float] = None
    # The scheduled completion event, kept so a tracker failure can retract
    # the attempt (see JobTracker.kill_tracker).
    completion_handle: Optional[object] = None
    # Backup attempts launched by speculative execution do not advance the
    # workflow's plan progress (they duplicate an index already counted).
    speculative: bool = False

    @property
    def task_id(self) -> str:
        return f"{self.job.job_id}/{self.kind.value}-{self.index}"

    @property
    def workflow_name(self) -> Optional[str]:
        return self.job.workflow_name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Task({self.task_id}, dur={self.duration:g})"
