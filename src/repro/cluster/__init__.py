"""Hadoop-1 cluster substrate: a discrete-event slot-level simulator.

The paper evaluates WOHA on Hadoop-1.2.1 over 80 servers; we reproduce the
scheduling-relevant behaviour of that stack — a JobTracker master assigning
map/reduce tasks to TaskTracker slots on heartbeats — as a deterministic
simulation (see DESIGN.md §2 for why this substitution preserves the
paper's results).
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.tasks import Task, TaskKind
from repro.cluster.job import JobInProgress, SubmitterJob, JobState
from repro.cluster.tasktracker import TaskTracker
from repro.cluster.jobtracker import JobTracker, WorkflowInProgress
from repro.cluster.simulation import ClusterSimulation, SimulationResult, WorkflowStats

__all__ = [
    "ClusterConfig",
    "Task",
    "TaskKind",
    "JobInProgress",
    "SubmitterJob",
    "JobState",
    "TaskTracker",
    "JobTracker",
    "WorkflowInProgress",
    "ClusterSimulation",
    "SimulationResult",
    "WorkflowStats",
]
