"""Cluster sizing and timing knobs."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of a simulated Hadoop-1 cluster.

    The paper's testbed ran 80 servers with 2 map slots and 1 reduce slot
    each (§V-A); its trace experiments use abstract sizes like "200m-200r"
    (§VI-A).  Both are expressible here.

    Attributes:
        num_nodes: number of TaskTrackers.
        map_slots_per_node: map slots on each tracker.
        reduce_slots_per_node: reduce slots on each tracker.
        heartbeat_interval: seconds between a tracker's periodic heartbeats.
            Hadoop-1 used ~3 s for small clusters.
        eager_heartbeats: also trigger a scheduling round the moment a task
            finishes (Hadoop's out-of-band heartbeat,
            ``mapreduce.tasktracker.outofband.heartbeat``).  Keeps slot idle
            time near zero; on by default, matching a tuned cluster.
        quiescent_heartbeats: simulator fast path — park a tracker's
            periodic heartbeat timer once a tick launches nothing and its
            slots are full or unservable, waking it (re-aligned to its
            original phase grid) on any state change that could make the
            scheduler answer differently.  Only active alongside
            ``eager_heartbeats`` (where every parked tick is provably a
            no-op); decisions and traces are byte-identical either way
            (DESIGN.md §10).  On by default.
        batched_assignment: simulator fast path for busy clusters — fill
            all free slots of a kind in one
            :meth:`~repro.schedulers.base.WorkflowScheduler.select_tasks`
            round per tracker tick / scheduling round instead of one
            queue walk per launch.  Schedulers whose batched walk is
            provably decision-identical override ``select_tasks``; the
            base-class default replays the one-launch-per-call loop, so
            decisions and traces are byte-identical either way
            (DESIGN.md §11).  Off by default (the reference path).
        submit_task_duration: seconds one WOHA submitter map task occupies a
            map slot to load jars and initialise a wjob (§III-A).
        oozie_poll_interval: seconds between Oozie-lite readiness polls for
            the baseline submission path; 0 means submit immediately on the
            completion event.
    """

    num_nodes: int
    map_slots_per_node: int = 2
    reduce_slots_per_node: int = 1
    heartbeat_interval: float = 3.0
    eager_heartbeats: bool = True
    quiescent_heartbeats: bool = True
    batched_assignment: bool = False
    submit_task_duration: float = 1.0
    oozie_poll_interval: float = 0.0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.map_slots_per_node < 0 or self.reduce_slots_per_node < 0:
            raise ValueError("slot counts must be non-negative")
        if self.map_slots_per_node + self.reduce_slots_per_node == 0:
            raise ValueError("cluster has no slots at all")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.submit_task_duration < 0 or self.oozie_poll_interval < 0:
            raise ValueError("durations must be non-negative")

    @property
    def total_map_slots(self) -> int:
        return self.num_nodes * self.map_slots_per_node

    @property
    def total_reduce_slots(self) -> int:
        return self.num_nodes * self.reduce_slots_per_node

    @property
    def total_slots(self) -> int:
        """The pooled slot count ``n`` a WOHA client asks the master for."""
        return self.total_map_slots + self.total_reduce_slots

    @classmethod
    def from_total_slots(
        cls,
        map_slots: int,
        reduce_slots: int,
        nodes: int = 100,
        **kwargs,
    ) -> "ClusterConfig":
        """Build a config from aggregate slot counts like the paper's
        "200m-200r" cluster sizes, spreading slots over ``nodes`` trackers.

        ``map_slots`` and ``reduce_slots`` must be divisible by ``nodes``;
        pick ``nodes`` accordingly (the default 100 divides the paper's
        200/240/280 sizes... 240 and 280 are divisible by 40, so pass
        ``nodes=40`` for those, or use :func:`math.gcd` yourself).
        """
        if map_slots % nodes or reduce_slots % nodes:
            raise ValueError(
                f"slot totals ({map_slots}m/{reduce_slots}r) not divisible by nodes={nodes}"
            )
        return cls(
            num_nodes=nodes,
            map_slots_per_node=map_slots // nodes,
            reduce_slots_per_node=reduce_slots // nodes,
            **kwargs,
        )

    @classmethod
    def paper_testbed(cls, num_nodes: int = 80, **kwargs) -> "ClusterConfig":
        """The paper's 80-server testbed: 2 map + 1 reduce slot per server."""
        return cls(num_nodes=num_nodes, map_slots_per_node=2, reduce_slots_per_node=1, **kwargs)
