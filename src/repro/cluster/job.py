"""JobInProgress: the runtime state of one submitted Map-Reduce job.

Mirrors Hadoop-1's ``JobInProgress``: a job exposes runnable map tasks
immediately, and runnable reduce tasks once every map has *finished*
(no shuffle overlap — the same model Algorithm 1 uses to build plans, so
plan and execution agree; see DESIGN.md §5).

Task attempts are tracked by index so lost attempts (tracker failure) can
be re-queued, and completed map outputs remember the tracker they live on:
as in Hadoop, losing that tracker before the job's reducers finish forces
the map to re-execute.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.tasks import Task, TaskKind
from repro.workflow.model import WJob

__all__ = ["JobState", "JobInProgress", "SubmitterJob"]

DurationSampler = Callable[[TaskKind, int], float]
"""Optional per-task duration override: ``(kind, index) -> seconds``."""


class JobState(enum.Enum):
    RUNNING = "running"
    SUCCEEDED = "succeeded"


class JobInProgress:
    """Runtime counters and task hand-out for one wjob.

    Args:
        job_id: globally unique id assigned by the JobTracker.
        wjob: the immutable job description.
        workflow_name: owning workflow, or ``None`` for standalone jobs.
        submit_time: when the JobTracker accepted the job.
        duration_sampler: optional override for individual task durations
            (used by the estimation-error ablation); defaults to the wjob's
            ``map_duration`` / ``reduce_duration`` estimates.
    """

    def __init__(
        self,
        job_id: str,
        wjob: WJob,
        workflow_name: Optional[str],
        submit_time: float,
        duration_sampler: Optional[DurationSampler] = None,
    ) -> None:
        self.job_id = job_id
        self.wjob = wjob
        self.workflow_name = workflow_name
        self.submit_time = submit_time
        self.finish_time: Optional[float] = None
        self.state = JobState.RUNNING
        self._duration_sampler = duration_sampler

        # Scheduler queue walks probe every queued job per assignment round
        # (the §IV hot path), so the state those probes read is kept in
        # plain attributes maintained on state transitions — no property
        # dispatch chains per probe.  ``completed`` and ``map_phase_done``
        # are flat booleans updated exactly where ``state`` /
        # ``maps_finished`` change; ``num_maps``/``num_reduces`` are frozen
        # copies of the immutable WJob counts.
        self.num_maps = wjob.num_maps
        self.num_reduces = wjob.num_reduces
        self.completed = False
        self.map_phase_done = wjob.num_maps == 0
        # True iff a map task could be handed out right now (mirrors
        # ``runnable_maps > 0``; SubmitterJob maintains it over its gated
        # unlock queue instead).  Stale-True is harmless — obtain_map
        # re-checks — but the transitions below keep it exact.
        self.has_pending_maps = wjob.num_maps > 0
        self._pending_maps: Deque[int] = deque(range(wjob.num_maps))
        self._pending_reduces: Deque[int] = deque(range(wjob.num_reduces))
        self.maps_finished = 0
        self.reduces_finished = 0
        self.running_maps = 0
        self.running_reduces = 0
        # index -> tracker id, for finished maps whose output a reducer may
        # still need to fetch.
        self._map_output_locations: Dict[int, int] = {}

    # -- introspection used by schedulers --------------------------------

    @property
    def name(self) -> str:
        return self.wjob.name

    @property
    def maps_scheduled(self) -> int:
        """Map attempts handed out and not re-queued."""
        return self.num_maps - len(self._pending_maps)

    @property
    def reduces_scheduled(self) -> int:
        return self.num_reduces - len(self._pending_reduces)

    @property
    def reduces_ready(self) -> bool:
        """Reduce tasks become runnable once all maps have finished."""
        return self.map_phase_done

    @property
    def runnable_maps(self) -> int:
        return len(self._pending_maps)

    @property
    def runnable_reduces(self) -> int:
        if not self.map_phase_done:
            return 0
        return len(self._pending_reduces)

    def has_runnable(self, kind: TaskKind) -> bool:
        if kind.uses_map_slot:
            return self.runnable_maps > 0
        return self.runnable_reduces > 0

    # -- task hand-out ----------------------------------------------------

    def _duration(self, kind: TaskKind, index: int) -> float:
        if self._duration_sampler is not None:
            # Injected per-wjob estimation-noise sampler (seeded in
            # repro.noise); see JobTracker.duration_sampler_factory.
            return self._duration_sampler(kind, index)  # repro: allow[DT202]
        return self.wjob.map_duration if kind is TaskKind.MAP else self.wjob.reduce_duration

    def obtain_map(self) -> Optional[Task]:
        """Hand out the next map task, or ``None`` if none is runnable."""
        if not self._pending_maps:
            return None
        index = self._pending_maps.popleft()
        if not self._pending_maps:
            self.has_pending_maps = False
        self.running_maps += 1
        return Task(job=self, kind=TaskKind.MAP, index=index, duration=self._duration(TaskKind.MAP, index))

    def obtain_reduce(self) -> Optional[Task]:
        """Hand out the next reduce task (only once the map phase finished)."""
        if not self.map_phase_done or not self._pending_reduces:
            return None
        index = self._pending_reduces.popleft()
        self.running_reduces += 1
        return Task(
            job=self, kind=TaskKind.REDUCE, index=index, duration=self._duration(TaskKind.REDUCE, index)
        )

    def obtain(self, kind: TaskKind) -> Optional[Task]:
        return self.obtain_map() if kind.uses_map_slot else self.obtain_reduce()

    # -- completion accounting ---------------------------------------------

    def on_task_complete(self, task: Task, now: float) -> Tuple[bool, bool]:
        """Account a finished task.

        Returns:
            ``(map_phase_just_completed, job_just_completed)``.
        """
        if task.kind is TaskKind.MAP:
            self.maps_finished += 1
            self.running_maps -= 1
            if self.maps_finished >= self.num_maps:
                self.map_phase_done = True
            if self.num_reduces > 0 and task.tracker_id is not None:
                self._map_output_locations[task.index] = task.tracker_id
        elif task.kind is TaskKind.REDUCE:
            self.reduces_finished += 1
            self.running_reduces -= 1
        else:
            raise ValueError(f"plain job got a {task.kind} task completion")
        maps_done = task.kind is TaskKind.MAP and self.map_phase_done
        job_done = self.map_phase_done and self.reduces_finished >= self.num_reduces
        if job_done and self.state is not JobState.SUCCEEDED:
            self.state = JobState.SUCCEEDED
            self.completed = True
            self.finish_time = now
            self._map_output_locations.clear()  # outputs now on HDFS
            return maps_done, True
        return maps_done, False

    # -- failure handling -----------------------------------------------------

    def on_task_lost(self, task: Task) -> None:
        """A running attempt died with its tracker; re-queue the task."""
        if task.kind is TaskKind.MAP:
            self.running_maps -= 1
            self._pending_maps.appendleft(task.index)
            self.has_pending_maps = True
        elif task.kind is TaskKind.REDUCE:
            self.running_reduces -= 1
            self._pending_reduces.appendleft(task.index)
        else:
            raise ValueError(f"plain job got a {task.kind} task loss")

    def on_backup_launched(self, backup: Task) -> None:
        """A speculative duplicate of a running attempt starts (it occupies
        a slot but re-covers an index already handed out)."""
        if backup.kind is TaskKind.MAP:
            self.running_maps += 1
        else:
            self.running_reduces += 1

    def on_attempt_killed(self, task: Task) -> None:
        """An attempt was retired (its sibling won, or died with a sibling
        still covering the index): adjust occupancy only — the logical task
        stays covered."""
        if task.kind is TaskKind.MAP:
            self.running_maps -= 1
        elif task.kind is TaskKind.REDUCE:
            self.running_reduces -= 1
        else:
            raise ValueError(f"plain job got a {task.kind} attempt kill")

    def invalidate_map_outputs(self, tracker_id: int) -> int:
        """Re-queue finished maps whose output lived on a lost tracker.

        Hadoop re-executes completed map tasks when the node holding their
        intermediate output dies before every reducer has fetched it.  Only
        relevant while the job is still running; finished jobs' outputs are
        on (replicated) HDFS.  Returns how many maps must re-run.
        """
        if self.completed:
            return 0
        doomed = [idx for idx, tid in self._map_output_locations.items() if tid == tracker_id]
        for idx in doomed:
            del self._map_output_locations[idx]
            self.maps_finished -= 1
            self._pending_maps.append(idx)
        if doomed:
            self.map_phase_done = self.maps_finished >= self.num_maps
            self.has_pending_maps = True
        return len(doomed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"JobInProgress({self.job_id}, maps {self.maps_finished}/{self.num_maps}, "
            f"reduces {self.reduces_finished}/{self.num_reduces}, {self.state.value})"
        )


class SubmitterJob(JobInProgress):
    """WOHA's per-workflow map-only submitter job (§III-A).

    One gated map task per wjob: the task for ``J_i^j`` is *unlocked* only
    when every job in ``P_i^j`` has finished.  Running the task (for
    ``submit_task_duration`` seconds on a map slot) models loading the
    wjob's jar and initialising its tasks on a slave; on completion the
    JobTracker submits the wjob.
    """

    def __init__(
        self,
        job_id: str,
        workflow_name: str,
        wjob_names: Sequence[str],
        submit_time: float,
        task_duration: float,
    ) -> None:
        # Give the base class a synthetic map-only description of the right
        # size; durations are the submit-task cost.
        spec = WJob(
            name=f"{workflow_name}.submitter",
            num_maps=len(wjob_names),
            num_reduces=0,
            map_duration=max(task_duration, 1e-9),
            reduce_duration=0.0,
        )
        super().__init__(job_id, spec, workflow_name, submit_time)
        # Submit tasks start locked; ``unlock`` arms the flag.
        self.has_pending_maps = False
        self._task_duration = task_duration
        self._order: Tuple[str, ...] = tuple(wjob_names)
        self._unlocked: Deque[str] = deque()
        self._dispatched: Set[str] = set()
        self._next_index = 0

    def unlock(self, wjob_name: str) -> None:
        """Make the submit task for ``wjob_name`` runnable."""
        if wjob_name not in self._order:
            raise KeyError(f"{self.job_id}: unknown wjob {wjob_name!r}")
        if wjob_name in self._dispatched or wjob_name in self._unlocked:
            raise ValueError(f"{self.job_id}: wjob {wjob_name!r} unlocked twice")
        self._unlocked.append(wjob_name)
        self.has_pending_maps = True

    @property
    def maps_scheduled(self) -> int:
        return self._next_index

    @property
    def runnable_maps(self) -> int:
        return len(self._unlocked)

    @property
    def runnable_reduces(self) -> int:
        return 0

    def obtain_map(self) -> Optional[Task]:
        if not self._unlocked:
            return None
        wjob_name = self._unlocked.popleft()
        if not self._unlocked:
            self.has_pending_maps = False
        self._dispatched.add(wjob_name)
        index = self._next_index
        self._next_index += 1
        self.running_maps += 1
        return Task(
            job=self,
            kind=TaskKind.SUBMIT,
            index=index,
            duration=self._task_duration,
            payload=wjob_name,
        )

    def on_task_complete(self, task: Task, now: float) -> Tuple[bool, bool]:
        if task.kind is not TaskKind.SUBMIT:
            raise ValueError(f"submitter job got a {task.kind} task completion")
        self.maps_finished += 1
        self.running_maps -= 1
        job_done = self.maps_finished >= self.num_maps
        if job_done and self.state is not JobState.SUCCEEDED:
            self.state = JobState.SUCCEEDED
            self.completed = True
            self.map_phase_done = True
            self.finish_time = now
            return True, True
        return False, False

    def on_task_lost(self, task: Task) -> None:
        """A dying submit task re-arms its wjob's submission."""
        if task.kind is not TaskKind.SUBMIT:
            raise ValueError(f"submitter job got a {task.kind} task loss")
        self.running_maps -= 1
        self._dispatched.discard(task.payload)
        self._unlocked.appendleft(task.payload)
        self.has_pending_maps = True

    def invalidate_map_outputs(self, tracker_id: int) -> int:
        """Submit tasks leave nothing behind on the tracker."""
        return 0
