"""Task-duration estimation error (the plan-staleness ablation).

WOHA plans from *estimated* task durations; the paper notes that "due to
... error in execution time prediction ... the progress requirement may not
faithfully represent the real execution trace" (§IV-A) and relies on the
runtime lag mechanism to absorb the difference.  This module injects
controlled estimation error: plans keep using the workflow's declared
durations while actual task executions are perturbed.

``LognormalNoise(sigma)`` multiplies every task's duration by an i.i.d.
lognormal factor with median 1 — σ=0 reproduces the noise-free simulation
bit-for-bit; σ≈0.3 corresponds to a typical ±35% misprediction.  The
ablation bench (``benchmarks/bench_ablation_estimation_error.py``) sweeps σ
and compares scheduler robustness.
"""

from __future__ import annotations

import zlib
from typing import Callable, Optional

import numpy as np

from repro.cluster.job import DurationSampler
from repro.cluster.tasks import TaskKind
from repro.workflow.model import WJob

__all__ = ["LognormalNoise", "DurationSamplerFactory"]

DurationSamplerFactory = Callable[[WJob], Optional[DurationSampler]]
"""Builds a per-job duration sampler; ``None`` means use exact estimates."""


class LognormalNoise:
    """Multiplicative lognormal duration noise, seeded and deterministic.

    Each (job name, phase, task index) triple gets a stable factor derived
    from the seed, so the same workload under two schedulers experiences
    *identical* actual durations — scheduler comparisons stay paired.
    """

    def __init__(self, sigma: float, seed: int = 0) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma
        self.seed = seed

    def factor(self, job_name: str, kind: TaskKind, index: int) -> float:
        """The noise multiplier for one specific task."""
        if self.sigma == 0.0:
            return 1.0
        # Stable per-task stream: a process-independent hash of the task
        # identity seeds a child generator (built-in hash() is randomized
        # per interpreter run and would break reproducibility).
        identity = f"{self.seed}|{job_name}|{kind.value}|{index}".encode()
        key = zlib.crc32(identity)
        rng = np.random.default_rng(key)
        return float(np.exp(self.sigma * rng.standard_normal()))

    def __call__(self, wjob: WJob) -> Optional[DurationSampler]:
        if self.sigma == 0.0:
            return None

        def sampler(kind: TaskKind, index: int) -> float:
            base = wjob.map_duration if kind is TaskKind.MAP else wjob.reduce_duration
            return base * self.factor(wjob.name, kind, index)

        return sampler
