"""WOHA reproduction: deadline-aware Map-Reduce workflow scheduling.

A full Python reproduction of *WOHA: Deadline-Aware Map-Reduce Workflow
Scheduling Framework over Hadoop Clusters* (Li et al., ICDCS 2014) on a
discrete-event Hadoop-1 cluster simulator.

Quickstart::

    from repro import (
        ClusterConfig, ClusterSimulation, WohaScheduler, make_planner,
        WorkflowBuilder,
    )

    wf = (
        WorkflowBuilder("pipeline")
        .job("extract", maps=20, reduces=4, map_s=30, reduce_s=120)
        .job("report", maps=5, reduces=1, map_s=20, reduce_s=60, after=["extract"])
        .deadline(relative=1800)
        .build()
    )
    sim = ClusterSimulation(
        ClusterConfig(num_nodes=8),
        WohaScheduler(),
        submission="woha",
        planner=make_planner("lpf"),
    )
    sim.add_workflow(wf)
    result = sim.run()
    print(result.stats["pipeline"].met_deadline)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction of every figure in the paper's evaluation.
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.failures import FailureInjector, Outage
from repro.cluster.simulation import ClusterSimulation, SimulationResult, WorkflowStats
from repro.cluster.speculation import SpeculationManager
from repro.noise import LognormalNoise
from repro.registry import parse_scheduler_config, register_plan_generator, register_scheduler
from repro.workloads.recurrence import Recurrence, expand_recurrences
from repro.core.capsearch import CapSearchResult, find_min_cap
from repro.core.client import WohaClient, make_planner
from repro.core.plancache import PlanCache
from repro.core.plangen import generate_requirements
from repro.core.priorities import PRIORITIZERS, hlf_order, lpf_order, mpf_order
from repro.core.progress import ProgressEntry, ProgressPlan
from repro.core.scheduler import NaiveWohaScheduler, WohaScheduler
from repro.events import Simulator
from repro.hdfs import HdfsNamespace
from repro.metrics.postmortem import MissExplanation, explain_miss
from repro.trace import DecisionTracer, read_jsonl
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.fair import FairScheduler
from repro.schedulers.fifo import FifoScheduler
from repro.structures.dsl import DoubleSkipList
from repro.structures.skiplist import DeterministicSkipList
from repro.workflow.builder import WorkflowBuilder
from repro.workflow.model import WJob, Workflow, WorkflowValidationError
from repro.workflow.xmlconfig import parse_workflow_xml, workflow_to_xml

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "ClusterSimulation",
    "FailureInjector",
    "Outage",
    "SpeculationManager",
    "LognormalNoise",
    "Recurrence",
    "expand_recurrences",
    "parse_scheduler_config",
    "register_scheduler",
    "register_plan_generator",
    "SimulationResult",
    "WorkflowStats",
    "CapSearchResult",
    "find_min_cap",
    "PlanCache",
    "WohaClient",
    "make_planner",
    "generate_requirements",
    "PRIORITIZERS",
    "hlf_order",
    "lpf_order",
    "mpf_order",
    "ProgressEntry",
    "ProgressPlan",
    "WohaScheduler",
    "NaiveWohaScheduler",
    "Simulator",
    "HdfsNamespace",
    "MissExplanation",
    "explain_miss",
    "DecisionTracer",
    "read_jsonl",
    "EdfScheduler",
    "FairScheduler",
    "FifoScheduler",
    "DoubleSkipList",
    "DeterministicSkipList",
    "WorkflowBuilder",
    "WJob",
    "Workflow",
    "WorkflowValidationError",
    "parse_workflow_xml",
    "workflow_to_xml",
    "__version__",
]
